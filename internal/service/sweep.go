package service

import (
	"encoding/json"
	"fmt"
	"strings"

	"seadopt"
	"seadopt/internal/arch"
	"seadopt/internal/ingest"
)

// sweepPointJSON is one sweep point's slot in the aggregate result: its
// 1-based point number (matching the Point tag on the progress stream), the
// index of its platform in the submission's [platform]+sweep_platforms
// list, its deadline, and either the scalar Design or the Pareto frontier.
type sweepPointJSON struct {
	Point       int               `json:"point"`
	Platform    int               `json:"platform"`
	DeadlineSec float64           `json:"deadline_sec"`
	Objectives  string            `json:"objectives,omitempty"`
	Design      *seadopt.Design   `json:"design,omitempty"`
	Size        int               `json:"size,omitempty"`
	Frontier    []*seadopt.Design `json:"frontier,omitempty"`
}

// executeSweep runs a mode=sweep flight: the cross product of the
// submission's platform list, deadline sweep and (in Pareto point mode)
// objective sets. Each platform's points run through one OptimizeSweep
// batch, so the bounds precompute happens once per (graph, platform) and a
// probe verdict computed for one point is never recomputed for another.
// Points stream in deterministic platform-major × deadline × objective-set
// order over the shared progress log, each event tagged with its 1-based
// point; the aggregate result carries every point's design or frontier.
// Every point's payload is byte-identical to what an equivalent single-point
// submission would produce.
func (s *Server) executeSweep(f *flight) (result []byte, summary string, stats *seadopt.ExploreStats, err error) {
	o := f.problem.Options
	strategy, err := seadopt.ParseExploreStrategy(o.Strategy)
	if err != nil {
		return nil, "", nil, err
	}
	pointMode, err := ingest.ParseMode(o.SweepPointMode)
	if err != nil || pointMode == ingest.ModeSweep {
		return nil, "", nil, fmt.Errorf("service: sweep point mode %q (want scalar or pareto)", o.SweepPointMode)
	}
	pareto := pointMode == ingest.ModePareto
	if len(o.SweepDeadlines) == 0 {
		return nil, "", nil, fmt.Errorf("service: sweep submission has no deadlines")
	}
	objSets := o.SweepObjectiveSets
	if !pareto {
		objSets = nil
	} else if len(objSets) == 0 {
		objSets = []string{""} // the default objective selection
	}
	parsedSets := make([]seadopt.ParetoObjectives, len(objSets))
	for i, set := range objSets {
		if parsedSets[i], err = seadopt.ParseParetoObjectives(set); err != nil {
			return nil, "", nil, err
		}
	}
	platforms := append([]*arch.Platform{f.problem.Platform}, f.problem.SweepPlatforms...)

	stats = new(seadopt.ExploreStats)
	prunedSoFar := 0 // cumulative across points; callbacks are serialized
	var payloadPoints []sweepPointJSON
	var sb strings.Builder
	globalPoint := 0
	for pi, plat := range platforms {
		sys, err := seadopt.NewSystem(f.problem.Graph, plat)
		if err != nil {
			return nil, "", nil, err
		}
		var points []seadopt.SweepPoint
		for _, d := range o.SweepDeadlines {
			if pareto {
				for _, objs := range parsedSets {
					points = append(points, seadopt.SweepPoint{DeadlineSec: d, Pareto: true, Objectives: objs})
				}
			} else {
				points = append(points, seadopt.SweepPoint{DeadlineSec: d})
			}
		}
		base := globalPoint
		sopts := seadopt.SweepOptions{
			Options: seadopt.OptimizeOptions{
				Stats:            stats, // the last platform's sweep-wide aggregate wins
				SER:              o.SER,
				StreamIterations: o.StreamIterations,
				SearchMoves:      o.SearchMoves,
				Seed:             o.Seed,
				Strategy:         strategy,
				SampleBudget:     o.SampleBudget,
				Parallelism:      s.cfg.EngineParallelism,
			},
			NoWarmStart: s.cfg.DisableWarmStart,
			PointProgress: func(point int, p seadopt.ExploreProgress) {
				s.mirrorProgress(f, base+point+1, &prunedSoFar, p)
			},
		}
		s.engineExecs.Add(1)
		res, err := sys.OptimizeSweepContext(f.ctx, points, sopts)
		if err != nil {
			return nil, "", nil, err
		}
		s.sweepPoints.Add(int64(len(res)))
		// Register every point's winner in the cross-job warm registry under
		// this platform's own fingerprint, so a later single-point submission
		// of the same workload — on the primary or any sweep platform —
		// warm-starts from the sweep's results exactly as it would from a
		// prior single-point job.
		if !s.cfg.DisableWarmStart && o.Baseline == "" {
			pp := *f.problem
			pp.Platform = plat
			if fp, ferr := pp.Fingerprint(); ferr == nil {
				for _, r := range res {
					if r.Spec.Pareto {
						po := o
						po.DeadlineSec = r.Spec.DeadlineSec
						s.recordFrontier(warmParetoKey(fp, po),
							frontierWarmPoints(sys, r.Spec.DeadlineSec, r.Frontier))
					} else if r.Spec.DeadlineSec <= 0 || r.Design.Eval.MeetsDeadline {
						if rank, rerr := sys.ScalingRank(r.Design.Scaling); rerr == nil {
							s.recordHint(warmScalarKey(fp, o), rank)
						}
					}
				}
			}
		}
		for j, r := range res {
			pj := sweepPointJSON{
				Point:       base + j + 1,
				Platform:    pi,
				DeadlineSec: r.Spec.DeadlineSec,
			}
			if r.Spec.Pareto {
				pj.Objectives = r.Spec.Objectives.String()
				pj.Size = len(r.Frontier)
				pj.Frontier = r.Frontier
				fmt.Fprintf(&sb, "  [%d] platform %d deadline %s: frontier over (%s): %d design(s)\n",
					pj.Point, pi, formatFloat(r.Spec.DeadlineSec), pj.Objectives, len(r.Frontier))
			} else {
				pj.Design = r.Design
				fmt.Fprintf(&sb, "  [%d] platform %d deadline %s: scaling %v  %s\n",
					pj.Point, pi, formatFloat(r.Spec.DeadlineSec), r.Design.Scaling, r.Design.Eval.String())
			}
			payloadPoints = append(payloadPoints, pj)
		}
		globalPoint += len(res)
	}
	payload := struct {
		Mode      string           `json:"mode"`
		PointMode string           `json:"point_mode"`
		Platforms int              `json:"platforms"`
		Size      int              `json:"size"`
		Points    []sweepPointJSON `json:"points"`
	}{Mode: ingest.ModeSweep, PointMode: pointMode, Platforms: len(platforms), Size: len(payloadPoints), Points: payloadPoints}
	result, err = json.Marshal(payload)
	if err != nil {
		return nil, "", nil, err
	}
	header := fmt.Sprintf("sweep: %d point(s) = %d platform(s) × %d deadline(s)",
		len(payloadPoints), len(platforms), len(o.SweepDeadlines))
	if pareto {
		header += fmt.Sprintf(" × %d objective set(s)", len(parsedSets))
	}
	return result, header + "\n" + sb.String(), stats, nil
}
