package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"seadopt"
)

// This file is the service's durability layer: an append-only JSONL journal
// under Config.StoreDir that records every accepted submission, every
// terminal outcome and every warm-start seed. Each append is fsynced before
// the triggering operation acknowledges, so a daemon that is SIGKILLed and
// restarted against the same directory loses no accepted job: finished
// results (and their exact bytes) are served from the journal, and jobs
// that were queued or running at the kill are re-enqueued under their
// original IDs and re-run — deterministically to the same bytes.
//
// The journal is a log, not a database: recovery replays it from the top,
// later records superseding earlier ones, and a torn final line (the
// append the crash interrupted) is ignored.

// storeJournalName is the journal file inside Config.StoreDir.
const storeJournalName = "journal.jsonl"

// storeWarmPoint mirrors seadopt.WarmPoint with a stable wire encoding.
type storeWarmPoint struct {
	Combination int     `json:"c"`
	Makespan    float64 `json:"tm"`
	Gamma       float64 `json:"gamma"`
}

// storeRecord is one journal line. Kind selects which fields are meaningful:
//
//	job      ID, Key, Priority, Problem (canonical encoding), At
//	result   ID, Key, State (done/failed/canceled), Result, Summary, Total, Error, At
//	cancel   ID, At
//	hint     Key (warm registry key), Rank
//	frontier Key (warm registry key), Points
type storeRecord struct {
	Kind     string           `json:"kind"`
	ID       string           `json:"id,omitempty"`
	Key      string           `json:"key,omitempty"`
	Graph    string           `json:"graph,omitempty"`
	Priority int              `json:"priority,omitempty"`
	Problem  json.RawMessage  `json:"problem,omitempty"`
	At       time.Time        `json:"at,omitzero"`
	State    State            `json:"state,omitempty"`
	Result   json.RawMessage  `json:"result,omitempty"`
	Summary  string           `json:"summary,omitempty"`
	Total    int              `json:"total,omitempty"`
	Error    string           `json:"error,omitempty"`
	Rank     int              `json:"rank,omitempty"`
	Points   []storeWarmPoint `json:"points,omitempty"`
}

// jobStore owns the journal file handle. Appends are serialized by its own
// mutex (never the Server's — fsync latency must not stall job scheduling
// beyond the appending operation itself).
type jobStore struct {
	mu sync.Mutex
	f  *os.File
}

// openJobStore opens (creating as needed) the journal under dir and replays
// its existing records.
func openJobStore(dir string) (*jobStore, []storeRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("service: store dir: %w", err)
	}
	path := filepath.Join(dir, storeJournalName)
	recs, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: opening store journal: %w", err)
	}
	return &jobStore{f: f}, recs, nil
}

// replayJournal reads every decodable record in order. Decoding stops at
// the first malformed line, which is the torn tail of an interrupted
// append — everything before it was fsynced whole.
func replayJournal(path string) ([]storeRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: reading store journal: %w", err)
	}
	defer f.Close()
	var recs []storeRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec storeRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail from an interrupted append
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: reading store journal: %w", err)
	}
	return recs, nil
}

// Append writes one record and fsyncs it. Callers must not acknowledge the
// recorded operation (202 a submission, serve a result as durable) before
// Append returns.
func (st *jobStore) Append(rec storeRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, err := st.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("service: appending store journal: %w", err)
	}
	if err := st.f.Sync(); err != nil {
		return fmt.Errorf("service: syncing store journal: %w", err)
	}
	return nil
}

func (st *jobStore) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.f.Close()
}

func toStorePoints(points []seadopt.WarmPoint) []storeWarmPoint {
	out := make([]storeWarmPoint, len(points))
	for i, p := range points {
		out[i] = storeWarmPoint{Combination: p.Combination, Makespan: p.Makespan, Gamma: p.Gamma}
	}
	return out
}

func fromStorePoints(points []storeWarmPoint) []seadopt.WarmPoint {
	out := make([]seadopt.WarmPoint, len(points))
	for i, p := range points {
		out[i] = seadopt.WarmPoint{Combination: p.Combination, Makespan: p.Makespan, Gamma: p.Gamma}
	}
	return out
}
