package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"seadopt/internal/taskgraph"
)

// newCoordinator boots a coordinator server whose AdvertiseURL points back
// at its own ephemeral endpoint, so peer workers can reach its fact
// exchange. The handler indirection exists because the URL is only known
// after the listener binds, but Config is fixed at construction.
func newCoordinator(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	var h atomic.Pointer[http.Handler]
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*h.Load()).ServeHTTP(w, r)
	}))
	cfg.AdvertiseURL = ts.URL
	s, err := NewServer(cfg)
	if err != nil {
		ts.Close()
		t.Fatal(err)
	}
	handler := s.Handler()
	h.Store(&handler)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		_ = s.Close(ctx)
	})
	return s, ts
}

// runToDone submits over HTTP, waits for done, and returns the final
// status plus the complete SSE progress stream.
func runToDone(t *testing.T, base string, body []byte) (JobStatus, []ProgressEvent) {
	t.Helper()
	st := postJob(t, base, body)
	final := waitJobHTTP(t, base, st.ID, StateDone)
	events, _ := readSSE(t, base, st.ID)
	return final, events
}

// assertSameRun asserts result bytes and the full progress stream are
// byte-identical between a distributed and a single-node execution.
func assertSameRun(t *testing.T, label string, got, want JobStatus, gotEv, wantEv []ProgressEvent) {
	t.Helper()
	if !bytes.Equal(got.Result, want.Result) {
		t.Fatalf("%s: result bytes differ from single-node:\n%s\nvs\n%s", label, got.Result, want.Result)
	}
	if got.Summary != want.Summary {
		t.Fatalf("%s: summary differs:\n%q\nvs\n%q", label, got.Summary, want.Summary)
	}
	gj, err := json.Marshal(gotEv)
	if err != nil {
		t.Fatal(err)
	}
	wj, err := json.Marshal(wantEv)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gj, wj) {
		t.Fatalf("%s: progress stream differs from single-node (%d vs %d events)\n%s\nvs\n%s",
			label, len(gotEv), len(wantEv), gj, wj)
	}
}

// TestDistributedScalarMatchesSingleNode: a coordinator fanning MPEG-2 out
// to two HTTP peer workers returns the same Design bytes and the same
// progress stream as a single-node server, while the shard counters prove
// work actually went remote.
func TestDistributedScalarMatchesSingleNode(t *testing.T) {
	_, single := newHTTPServer(t, Config{Workers: 1})
	want, wantEv := runToDone(t, single.URL, mpeg2Envelope(t))

	w1, ts1 := newHTTPServer(t, Config{Workers: 1})
	w2, ts2 := newHTTPServer(t, Config{Workers: 1})
	_, coord := newCoordinator(t, Config{Workers: 1, Peers: []string{ts1.URL, ts2.URL}})
	got, gotEv := runToDone(t, coord.URL, mpeg2Envelope(t))
	assertSameRun(t, "distributed scalar", got, want, gotEv, wantEv)

	if execs := metricValue(t, coord.URL, "seadoptd_sharded_executions_total"); execs != 1 {
		t.Fatalf("coordinator sharded executions %d, want 1", execs)
	}
	if served := w1.Metrics().ShardsServed + w2.Metrics().ShardsServed; served != 2 {
		t.Fatalf("peers served %d shards, want 2", served)
	}
	// Sharded flights have no single-process engine telemetry.
	resp, err := http.Get(coord.URL + "/v1/jobs/" + got.ID + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("sharded job stats: %d, want 409", resp.StatusCode)
	}
}

// TestDistributedParetoMatchesSingleNode is the same contract for frontier
// jobs: the merged Pareto frontier is byte-identical to single-node.
func TestDistributedParetoMatchesSingleNode(t *testing.T) {
	body := mpeg2Envelope(t)
	body = bytes.Replace(body, []byte(`"options":{`), []byte(`"options":{"mode":"pareto",`), 1)

	_, single := newHTTPServer(t, Config{Workers: 1})
	want, wantEv := runToDone(t, single.URL, body)
	decodeFrontier(t, want.Result) // sanity: it is a frontier payload

	w1, ts1 := newHTTPServer(t, Config{Workers: 1})
	w2, ts2 := newHTTPServer(t, Config{Workers: 1})
	_, coord := newCoordinator(t, Config{Workers: 1, Peers: []string{ts1.URL, ts2.URL}})
	got, gotEv := runToDone(t, coord.URL, body)
	assertSameRun(t, "distributed pareto", got, want, gotEv, wantEv)

	if served := w1.Metrics().ShardsServed + w2.Metrics().ShardsServed; served != 2 {
		t.Fatalf("peers served %d shards, want 2", served)
	}
}

// TestDistributedFourShards: an explicit -shards 4 over two peers (ranges
// round-robin onto them) still merges to single-node bytes on a larger
// workload.
func TestDistributedFourShards(t *testing.T) {
	gj, err := taskgraph.MPEG2().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	env, _ := json.Marshal(map[string]any{
		"format":   "json",
		"graph":    json.RawMessage(gj),
		"platform": map[string]int{"cores": 6, "levels": 3},
		"options": map[string]any{
			"deadline_sec":      taskgraph.MPEG2Deadline,
			"stream_iterations": taskgraph.MPEG2Frames,
			"seed":              7,
		},
	})

	_, single := newHTTPServer(t, Config{Workers: 1})
	want, wantEv := runToDone(t, single.URL, env)

	_, ts1 := newHTTPServer(t, Config{Workers: 1})
	_, ts2 := newHTTPServer(t, Config{Workers: 1})
	_, coord := newCoordinator(t, Config{Workers: 1, Shards: 4, Peers: []string{ts1.URL, ts2.URL}})
	got, gotEv := runToDone(t, coord.URL, env)
	assertSameRun(t, "four shards", got, want, gotEv, wantEv)
}

// TestDistributedPeerFallback: a coordinator whose only peer is
// unreachable falls back to embedded execution of the remote shards — the
// job still finishes with single-node bytes.
func TestDistributedPeerFallback(t *testing.T) {
	_, single := newHTTPServer(t, Config{Workers: 1})
	want, wantEv := runToDone(t, single.URL, mpeg2Envelope(t))

	// A listener that is immediately closed: connections are refused.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	_, coord := newCoordinator(t, Config{Workers: 1, Peers: []string{deadURL}})
	got, gotEv := runToDone(t, coord.URL, mpeg2Envelope(t))
	assertSameRun(t, "dead peer fallback", got, want, gotEv, wantEv)
}

// TestDistributedIneligibleJobsRunLocal: sweeps, baselines and sampled
// strategies never shard — they run single-node even on a coordinator.
func TestDistributedIneligibleJobsRunLocal(t *testing.T) {
	_, ts1 := newHTTPServer(t, Config{Workers: 1})
	coordSrv, coord := newCoordinator(t, Config{Workers: 1, Peers: []string{ts1.URL}})

	body := mpeg2Envelope(t)
	body = bytes.Replace(body, []byte(`"options":{`), []byte(`"options":{"baseline":"reg",`), 1)
	st := postJob(t, coord.URL, body)
	waitJobHTTP(t, coord.URL, st.ID, StateDone)
	if execs := coordSrv.Metrics().ShardedExecutions; execs != 0 {
		t.Fatalf("baseline job sharded %d times, want 0", execs)
	}
}
