package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"seadopt/internal/taskgraph"
)

// newHTTPServer boots the service's HTTP API on an ephemeral port.
func newHTTPServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		_ = s.Close(ctx)
	})
	return s, ts
}

// mpeg2Envelope is the JSON job envelope the README walkthrough submits.
func mpeg2Envelope(t *testing.T) []byte {
	t.Helper()
	gj, err := taskgraph.MPEG2().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]any{
		"format":   "json",
		"graph":    json.RawMessage(gj),
		"platform": map[string]int{"cores": 4, "levels": 3},
		"options": map[string]any{
			"deadline_sec":      taskgraph.MPEG2Deadline,
			"stream_iterations": taskgraph.MPEG2Frames,
			"seed":              2010,
		},
	}
	body, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postJob(t *testing.T, base string, body []byte) JobStatus {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/jobs: %d: %s", resp.StatusCode, raw)
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decoding submit response %s: %v", raw, err)
	}
	return st
}

func getJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitJobHTTP(t *testing.T, base, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := getJob(t, base, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (%s), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// metricValue scrapes one un-labelled series from /metrics.
func metricValue(t *testing.T, base, name string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9]+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, body)
	}
	v, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestEndToEndConcurrentClients is the PR's acceptance criterion over the
// wire: 8 concurrent clients submit the same MPEG-2 problem; every job
// returns byte-identical Design JSON; the cache/single-flight counters
// prove exactly one engine execution; and the SSE stream replays progress
// events in enumeration order.
func TestEndToEndConcurrentClients(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 2})
	body := mpeg2Envelope(t)

	const clients = 8
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, resp.StatusCode, raw)
				return
			}
			var st JobStatus
			if err := json.Unmarshal(raw, &st); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var result []byte
	var key string
	for _, id := range ids {
		st := waitJobHTTP(t, ts.URL, id, StateDone)
		if key == "" {
			key = st.Key
		} else if st.Key != key {
			t.Fatalf("job %s has key %s, sibling had %s", id, st.Key, key)
		}
		if result == nil {
			result = st.Result
		} else if !bytes.Equal(result, st.Result) {
			t.Fatalf("job %s: result bytes differ from siblings:\n%s\nvs\n%s", id, st.Result, result)
		}
	}
	if execs := metricValue(t, ts.URL, "seadoptd_engine_executions_total"); execs != 1 {
		t.Fatalf("engine executed %d times for %d identical submissions", execs, clients)
	}
	dedup := metricValue(t, ts.URL, "seadoptd_cache_hits_total") + metricValue(t, ts.URL, "seadoptd_coalesced_total")
	if dedup != clients-1 {
		t.Fatalf("deduplicated %d of %d submissions", dedup, clients-1)
	}

	// SSE: the progress stream replays every scaling combination in
	// enumeration order, then a terminal done event.
	events, done := readSSE(t, ts.URL, ids[0])
	if len(events) == 0 {
		t.Fatal("no SSE progress events")
	}
	for i, ev := range events {
		if ev.Index != i {
			t.Fatalf("SSE event %d carries index %d; out of enumeration order", i, ev.Index)
		}
	}
	if events[len(events)-1].Total != len(events) {
		t.Fatalf("SSE stream has %d events, engine enumerated %d", len(events), events[len(events)-1].Total)
	}
	if done.State != StateDone {
		t.Fatalf("terminal SSE event in state %s", done.State)
	}
	if !bytes.Equal(done.Result, result) {
		t.Fatal("terminal SSE event carries different result bytes")
	}

	// Resubmitting after completion is an immediate cache hit (HTTP 200,
	// not 202) and moves the hit counter.
	hitsBefore := metricValue(t, ts.URL, "seadoptd_cache_hits_total")
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache-hit resubmission returned %d, want 200", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || !st.CacheHit || !bytes.Equal(st.Result, result) {
		t.Fatalf("cache-hit resubmission: state %s, cacheHit %v", st.State, st.CacheHit)
	}
	if got := metricValue(t, ts.URL, "seadoptd_cache_hits_total"); got != hitsBefore+1 {
		t.Fatalf("cache hits %d, want %d", got, hitsBefore+1)
	}
}

// readSSE consumes a job's whole progress stream.
func readSSE(t *testing.T, base, id string) ([]ProgressEvent, JobStatus) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("progress content type %q", ct)
	}
	var (
		events []ProgressEvent
		done   JobStatus
		event  string
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				var ev ProgressEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad progress payload %q: %v", data, err)
				}
				events = append(events, ev)
			case "done":
				if err := json.Unmarshal([]byte(data), &done); err != nil {
					t.Fatalf("bad done payload %q: %v", data, err)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return events, done
}

// TestHTTPCancelReturnsPromptly covers DELETE /v1/jobs/{id}: a long-running
// job is canceled over the wire, the response reports the canceled state,
// and the job record agrees.
func TestHTTPCancelReturnsPromptly(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 1})
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(60), 3)
	gj, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	env, _ := json.Marshal(map[string]any{
		"format":   "json",
		"graph":    json.RawMessage(gj),
		"platform": map[string]int{"cores": 6, "levels": 3},
		"options": map[string]any{
			"deadline_sec": taskgraph.RandomDeadline(60),
			"search_moves": 500_000,
			"seed":         3,
		},
	})
	st := postJob(t, ts.URL, env)
	waitJobHTTP(t, ts.URL, st.ID, StateRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("DELETE took %v", elapsed)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("DELETE: %d: %s", resp.StatusCode, raw)
	}
	var got JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled {
		t.Fatalf("DELETE response state %s, want canceled", got.State)
	}
	if after := getJob(t, ts.URL, st.ID); after.State != StateCanceled {
		t.Fatalf("job record state %s after DELETE", after.State)
	}
	// The canceled job's SSE stream terminates rather than hanging.
	_, done := readSSE(t, ts.URL, st.ID)
	if done.State != StateCanceled {
		t.Fatalf("SSE terminal state %s for canceled job", done.State)
	}
	// Second DELETE is a conflict.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("second DELETE: %d, want 409", resp2.StatusCode)
	}
}

// TestHTTPRawBodySubmission drives the raw-body path: a DOT document with
// job parameters in the query string, as examples/serve and curl users do.
func TestHTTPRawBodySubmission(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 1})
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(12), 1)
	url := ts.URL + "/v1/jobs?format=dot&cores=2&levels=3&deadline_sec=" +
		fmt.Sprintf("%g", taskgraph.RandomDeadline(12)) + "&seed=1"
	resp, err := http.Post(url, "text/vnd.graphviz", strings.NewReader(g.DOT()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("raw DOT submission: %d: %s", resp.StatusCode, raw)
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	final := waitJobHTTP(t, ts.URL, st.ID, StateDone)
	if len(final.Result) == 0 {
		t.Fatal("raw submission produced no result")
	}
}

// TestHTTPRawJSONWithFormatParam: an explicit ?format= selects raw-body
// mode even under Content-Type: application/json, so a canonical-JSON graph
// document POSTed directly is not mistaken for a job envelope.
func TestHTTPRawJSONWithFormatParam(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 1})
	gj, err := taskgraph.MPEG2().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/jobs?format=json&cores=4&levels=3&deadline_sec=" +
		fmt.Sprintf("%g", taskgraph.MPEG2Deadline) + "&stream_iterations=437&seed=2010"
	resp, err := http.Post(url, "application/json", bytes.NewReader(gj))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("raw JSON graph with ?format=json: %d: %s", resp.StatusCode, raw)
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if final := waitJobHTTP(t, ts.URL, st.ID, StateDone); len(final.Result) == 0 {
		t.Fatal("no result")
	}
}

func TestHTTPValidation(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		url  string
		ct   string
		body string
		want int
	}{
		{"empty body", "/v1/jobs", "application/json", "", http.StatusBadRequest},
		{"bad envelope", "/v1/jobs", "application/json", `{"format":"json"}`, http.StatusBadRequest},
		{"unknown field", "/v1/jobs", "application/json", `{"grpah":{}}`, http.StatusBadRequest},
		{"cyclic graph", "/v1/jobs", "application/json",
			`{"format":"json","graph":{"name":"c","registers":[],
			  "tasks":[{"name":"a","cycles":1,"registers":[]},{"name":"b","cycles":1,"registers":[]}],
			  "edges":[{"from":0,"to":1,"cycles":0},{"from":1,"to":0,"cycles":0}]}}`, http.StatusBadRequest},
		{"bad platform", "/v1/jobs", "application/json",
			`{"format":"json","graph":{"name":"g","registers":[],"tasks":[{"name":"a","cycles":1,"registers":[]}],"edges":[]},
			  "platform":{"levels":7}}`, http.StatusBadRequest},
		{"raw without format", "/v1/jobs", "text/plain", "???", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.url, tc.ct, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				raw, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, raw)
			}
		})
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/j-999999"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job GET: %d", resp.StatusCode)
		}
	}
}

func TestHTTPHealthAndList(t *testing.T) {
	s, ts := newHTTPServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	st := postJob(t, ts.URL, mpeg2Envelope(t))
	waitJobHTTP(t, ts.URL, st.ID, StateDone)
	listResp, err := http.Get(ts.URL + "/v1/jobs?state=done")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("list returned %+v", list.Jobs)
	}
	if len(list.Jobs[0].Result) != 0 {
		t.Fatal("list view should elide result payloads")
	}

	// Draining flips healthz to 503.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp2.StatusCode)
	}
}
