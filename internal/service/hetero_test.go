package service

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"seadopt/internal/taskgraph"
)

// heteroPlatformJSON is the full platform-spec form of the submit envelope's
// platform field: 3 cores across two distinct DVS tables.
const heteroPlatformJSON = `{
  "types": [
    {"name": "arm7x3", "freqs_mhz": [200, 100, 66.667]},
    {"name": "arm7x2", "freqs_mhz": [200, 100]}
  ],
  "cores": [
    {"type": "arm7x3", "count": 2},
    {"type": "arm7x2"}
  ]
}`

// envelope builds an MPEG-2 job envelope with the given platform JSON.
func heteroEnvelope(t *testing.T, platform string, searchMoves int) []byte {
	t.Helper()
	gj, err := taskgraph.MPEG2().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]any{
		"format":   "json",
		"graph":    json.RawMessage(gj),
		"platform": json.RawMessage(platform),
		"options": map[string]any{
			"deadline_sec":      taskgraph.MPEG2Deadline,
			"stream_iterations": taskgraph.MPEG2Frames,
			"search_moves":      searchMoves,
			"seed":              2010,
		},
	}
	body, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestConcurrentHeteroAndHomogeneousSubmissions: the same graph submitted
// concurrently on a heterogeneous platform and on the homogeneous shorthand
// must hash to distinct ProblemKeys, occupy distinct cache entries (two
// engine executions, no cross-coalescing), and both complete with results.
// Run under -race in CI.
func TestConcurrentHeteroAndHomogeneousSubmissions(t *testing.T) {
	srv, ts := newHTTPServer(t, Config{Workers: 2, EngineParallelism: 2})

	hetero := heteroEnvelope(t, heteroPlatformJSON, 60)
	homog := heteroEnvelope(t, `{"cores": 3, "levels": 3}`, 60)

	const perKind = 4
	var wg sync.WaitGroup
	ids := make([]string, 2*perKind)
	for i := 0; i < 2*perKind; i++ {
		body := hetero
		if i%2 == 1 {
			body = homog
		}
		wg.Add(1)
		go func(i int, body []byte) {
			defer wg.Done()
			ids[i] = postJob(t, ts.URL, body).ID
		}(i, body)
	}
	wg.Wait()

	keys := make(map[string]bool)
	results := make(map[string]string)
	for i, id := range ids {
		st := waitJobHTTP(t, ts.URL, id, StateDone)
		keys[st.Key] = true
		kind := "hetero"
		if i%2 == 1 {
			kind = "homog"
		}
		if prev, ok := results[kind]; ok && prev != string(st.Result) {
			t.Errorf("%s submissions returned different result bytes", kind)
		}
		results[kind] = string(st.Result)
		if len(st.Result) == 0 {
			t.Errorf("job %s finished without a result", id)
		}
	}
	if len(keys) != 2 {
		t.Fatalf("expected exactly 2 distinct ProblemKeys, got %d: %v", len(keys), keys)
	}
	if results["hetero"] == results["homog"] {
		t.Error("heterogeneous and homogeneous platforms produced identical result bytes")
	}

	m := srv.Metrics()
	if m.EngineExecutions != 2 {
		t.Errorf("engine executions = %d, want 2 (one per distinct problem)", m.EngineExecutions)
	}
	if m.CacheEntries != 2 {
		t.Errorf("cache entries = %d, want 2 distinct entries", m.CacheEntries)
	}

	// Resubmitting either form is a pure cache hit — the entries never
	// collided.
	before := m.CacheHits
	st := postJob(t, ts.URL, hetero)
	if st.State != StateDone || !st.CacheHit {
		t.Errorf("hetero resubmission state %s cacheHit=%v, want done cache hit", st.State, st.CacheHit)
	}
	st = postJob(t, ts.URL, homog)
	if st.State != StateDone || !st.CacheHit {
		t.Errorf("homog resubmission state %s cacheHit=%v, want done cache hit", st.State, st.CacheHit)
	}
	if got := srv.Metrics().CacheHits; got != before+2 {
		t.Errorf("cache hits went %d → %d, want +2", before, got)
	}
}

// TestHeteroSSECleanShutdownOnDelete: DELETE on a running heterogeneous job
// mid-stream must terminate its SSE progress stream promptly and cleanly —
// a terminal event (or clean EOF), no hang, no stream error. Run under -race
// in CI.
func TestHeteroSSECleanShutdownOnDelete(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 1, EngineParallelism: 1})

	// A deliberately slow job: exhaustive walk with a big per-scaling search
	// budget so DELETE lands mid-exploration.
	gj, err := taskgraph.MPEG2().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	env, _ := json.Marshal(map[string]any{
		"format":   "json",
		"graph":    json.RawMessage(gj),
		"platform": json.RawMessage(heteroPlatformJSON),
		"options": map[string]any{
			"deadline_sec":      taskgraph.MPEG2Deadline,
			"stream_iterations": taskgraph.MPEG2Frames,
			"search_moves":      500_000,
			"strategy":          "exhaustive",
			"seed":              7,
		},
	})
	st := postJob(t, ts.URL, env)
	waitJobHTTP(t, ts.URL, st.ID, StateRunning)

	// Subscribe mid-run.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	streamDone := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		sawTerminal := false
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "event: done") {
				sawTerminal = true
			}
		}
		if err := sc.Err(); err != nil {
			streamDone <- err
			return
		}
		if !sawTerminal {
			// A canceled job may close the stream without a terminal event
			// only if the client went away; here the server must deliver it.
			t.Error("SSE stream ended without a terminal done event")
		}
		streamDone <- nil
	}()

	// Let the stream attach, then cancel the job underneath it.
	time.Sleep(50 * time.Millisecond)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d: %s", dresp.StatusCode, raw)
	}

	select {
	case err := <-streamDone:
		if err != nil {
			t.Fatalf("SSE stream error after DELETE: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SSE stream did not shut down after DELETE")
	}
	if after := getJob(t, ts.URL, st.ID); after.State != StateCanceled {
		t.Fatalf("job state %s after DELETE, want canceled", after.State)
	}
}
