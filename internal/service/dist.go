package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"seadopt"
	"seadopt/internal/ingest"
)

// This file is the service's distributed-exploration layer. A coordinator
// (a server configured with Peers) splits an eligible job's scaling
// enumeration into contiguous rank ranges: one range runs embedded, the
// rest POST to peer seadoptd processes as self-contained shard requests
// (the problem travels as its canonical encoding, so the worker provably
// solves the exact problem the coordinator hashed). While shards run, they
// exchange bound-tightening facts through the coordinator's fact board —
// remote workers poll POST /internal/v1/exchange — so every shard prunes
// against the global best. The coordinator then merges the shard records
// through the engine's authoritative single-node replay: the merged Design
// or frontier and the Progress stream are byte-identical to a single-node
// run (see internal/mapping/shard.go for the replay contract).
//
// Failure posture: a peer that is unreachable or answers non-200 costs
// nothing but time — the coordinator re-runs that shard embedded. The fact
// exchange is best-effort; losing it only weakens remote pruning, never
// changes bytes.

// exchangePollInterval is how often a worker syncs facts with its
// coordinator while a shard runs.
const exchangePollInterval = 25 * time.Millisecond

// shardCallRequest is the wire form of POST /internal/v1/shard.
type shardCallRequest struct {
	// Problem is the canonical problem encoding (ingest.CanonicalEncoding).
	Problem json.RawMessage `json:"problem"`
	// Req is the shard work order: range, fold selection, seed facts.
	Req seadopt.ShardRequest `json:"req"`
	// Exchange is the coordinator's fact-exchange URL; empty disables the
	// live fact sync (the worker then prunes only on InitialFacts).
	Exchange string `json:"exchange,omitempty"`
	// Token names the coordinator-side exchange session.
	Token string `json:"token,omitempty"`
}

// shardCallResponse is the worker's reply: the record stream the
// coordinator replays.
type shardCallResponse struct {
	Result *seadopt.ShardResult `json:"result"`
}

// exchangeRequest is the wire form of POST /internal/v1/exchange: the
// worker pushes its newly published facts and asks for everything the
// board accumulated since its last poll.
type exchangeRequest struct {
	Token string              `json:"token"`
	Since int                 `json:"since"`
	Facts []seadopt.ShardFact `json:"facts,omitempty"`
}

type exchangeResponse struct {
	Facts []seadopt.ShardFact `json:"facts,omitempty"`
	Next  int                 `json:"next"`
}

// exchangeTable tracks the coordinator's live fact boards by session token.
type exchangeTable struct {
	mu sync.Mutex
	m  map[string]*seadopt.ShardFactBoard
}

func (t *exchangeTable) put(token string, b *seadopt.ShardFactBoard) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[string]*seadopt.ShardFactBoard)
	}
	t.m[token] = b
}

func (t *exchangeTable) get(token string) *seadopt.ShardFactBoard {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[token]
}

func (t *exchangeTable) del(token string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.m, token)
}

var (
	// Exchange polls are small and frequent; bound them tightly.
	distExchangeClient = &http.Client{Timeout: 5 * time.Second}
	// Shard calls run as long as the shard itself; the request context
	// (the flight's) is the only deadline.
	distShardClient = &http.Client{}
)

// shardRunnersFor resolves the shard plan for a flight: nil when the job
// must run single-node (no peers configured, or an ineligible job shape),
// else one runner slot per shard — slot 0 nil (embedded), the rest bound
// to peers round-robin. The returned cleanup tears down the fact-exchange
// session and must be called once the sharded run returns.
func (s *Server) shardRunnersFor(f *flight, sys *seadopt.System, opts seadopt.OptimizeOptions,
	strategy seadopt.ExploreStrategy, mode string) ([]seadopt.ShardRunner, func()) {
	n := s.cfg.Shards
	if n == 0 {
		n = len(s.cfg.Peers) + 1
	}
	if n <= 1 && len(s.cfg.Peers) == 0 {
		return nil, nil
	}
	// Sharding covers the deterministic contiguous-enumeration engines:
	// scalar and Pareto optimization under branch-and-bound or exhaustive
	// walks. Everything else (sweeps, baselines, sampled portfolios) runs
	// single-node.
	if mode == ingest.ModeSweep || f.problem.Options.Baseline != "" ||
		strategy == seadopt.StrategySampled {
		return nil, nil
	}
	enc, err := f.problem.CanonicalEncoding()
	if err != nil {
		return nil, nil
	}
	token := fmt.Sprintf("x-%06d", s.shardSeq.Add(1))
	runners := make([]seadopt.ShardRunner, n)
	if len(s.cfg.Peers) > 0 {
		for i := 1; i < n; i++ {
			peer := s.cfg.Peers[(i-1)%len(s.cfg.Peers)]
			runners[i] = s.peerRunner(peer, token, enc, sys, opts)
		}
	}
	s.shardedExecs.Add(1)
	return runners, func() { s.exchanges.del(token) }
}

// peerRunner returns a ShardRunner that POSTs the shard to a peer seadoptd,
// registering the coordinator's fact board under the session token so the
// peer can poll the exchange. Any transport or protocol failure falls back
// to embedded execution of the same range — byte-identical, just local.
func (s *Server) peerRunner(peer, token string, enc []byte,
	sys *seadopt.System, opts seadopt.OptimizeOptions) seadopt.ShardRunner {
	return func(ctx context.Context, req seadopt.ShardRequest, board *seadopt.ShardFactBoard) (*seadopt.ShardResult, error) {
		embedded := func(reason string, err error) (*seadopt.ShardResult, error) {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			args := []any{"peer", peer, "range_lo", req.Range.Lo, "range_hi", req.Range.Hi, "reason", reason}
			if err != nil {
				args = append(args, "error", err.Error())
			}
			s.cfg.Logger.Warn("peer shard fell back to embedded execution", args...)
			return sys.RunShard(ctx, opts, req, board)
		}
		exchange := ""
		if s.cfg.AdvertiseURL != "" {
			s.exchanges.put(token, board)
			exchange = strings.TrimRight(s.cfg.AdvertiseURL, "/") + "/internal/v1/exchange"
		}
		// Seed the worker with everything the board holds already (the
		// coordinator's ranked/warm incumbent fact in particular), so even
		// an exchange-less worker prunes against it.
		req.InitialFacts, _ = board.Since(0)
		body, err := json.Marshal(shardCallRequest{Problem: enc, Req: req, Exchange: exchange, Token: token})
		if err != nil {
			return embedded("encode", err)
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
			strings.TrimRight(peer, "/")+"/internal/v1/shard", bytes.NewReader(body))
		if err != nil {
			return embedded("request", err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := distShardClient.Do(hreq)
		if err != nil {
			return embedded("unreachable", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return embedded(fmt.Sprintf("status %d", resp.StatusCode), nil)
		}
		var cres shardCallResponse
		if err := json.NewDecoder(resp.Body).Decode(&cres); err != nil {
			return embedded("decode", err)
		}
		if cres.Result == nil {
			return embedded("empty result", nil)
		}
		return cres.Result, nil
	}
}

// handleShard executes one shard range for a remote coordinator.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	body, err := s.readBody(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var creq shardCallRequest
	if err := json.Unmarshal(body, &creq); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding shard request: %w", err))
		return
	}
	p, err := ingest.DecodeProblem(creq.Problem)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sys, err := seadopt.NewSystem(p.Graph, p.Platform)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	opts, err := s.shardOptions(p)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.shardsServed.Add(1)
	s.cfg.Logger.Info("shard request",
		"graph", p.Graph.Name(), "range_lo", creq.Req.Range.Lo, "range_hi", creq.Req.Range.Hi,
		"pareto", creq.Req.Pareto, "exchange", creq.Exchange != "")
	board := seadopt.NewShardFactBoard()
	if creq.Exchange != "" && creq.Token != "" {
		stop := s.pollExchange(r.Context(), creq.Exchange, creq.Token, board)
		defer stop()
	}
	res, err := sys.RunShard(r.Context(), opts, creq.Req, board)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, shardCallResponse{Result: res})
}

// shardOptions builds the engine options for a shard of the given problem.
// It mirrors execute()'s option construction for the distributable job
// shapes and shares this server's probe-reuse registry, so repeated shards
// of the same workload reuse probe trajectories.
func (s *Server) shardOptions(p *ingest.Problem) (seadopt.OptimizeOptions, error) {
	o := p.Options
	strategy, err := seadopt.ParseExploreStrategy(o.Strategy)
	if err != nil {
		return seadopt.OptimizeOptions{}, err
	}
	objectives, err := seadopt.ParseParetoObjectives(o.Objectives)
	if err != nil {
		return seadopt.OptimizeOptions{}, err
	}
	opts := seadopt.OptimizeOptions{
		SER:              o.SER,
		DeadlineSec:      o.DeadlineSec,
		StreamIterations: o.StreamIterations,
		SearchMoves:      o.SearchMoves,
		Seed:             o.Seed,
		Strategy:         strategy,
		Objectives:       objectives,
		Parallelism:      s.cfg.EngineParallelism,
	}
	if pk, kerr := p.ProbeKey(); kerr == nil {
		opts.Reuse = s.reuses.Get(pk)
	}
	return opts, nil
}

// pollExchange runs the worker-side fact sync: every poll it pushes the
// facts its shard published locally and merges back everything the
// coordinator's board accumulated. Returns a stop function that performs a
// final flush. All failures are swallowed — the exchange accelerates
// pruning but never affects result bytes.
func (s *Server) pollExchange(ctx context.Context, url, token string, board *seadopt.ShardFactBoard) func() {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		local, remote := 0, 0
		flush := func() {
			facts, next := board.Since(local)
			local = next
			body, err := json.Marshal(exchangeRequest{Token: token, Since: remote, Facts: facts})
			if err != nil {
				return
			}
			hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				return
			}
			hreq.Header.Set("Content-Type", "application/json")
			resp, err := distExchangeClient.Do(hreq)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var xres exchangeResponse
			if err := json.NewDecoder(resp.Body).Decode(&xres); err != nil {
				return
			}
			for _, f := range xres.Facts {
				board.Publish(f)
			}
			remote = xres.Next
		}
		tick := time.NewTicker(exchangePollInterval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				flush() // final flush so the coordinator sees every fact
				return
			case <-ctx.Done():
				return
			case <-tick.C:
				flush()
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// handleExchange serves the coordinator side of the fact sync: publish the
// worker's pushed facts, return everything new since the worker's cursor.
func (s *Server) handleExchange(w http.ResponseWriter, r *http.Request) {
	body, err := s.readBody(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var xreq exchangeRequest
	if err := json.Unmarshal(body, &xreq); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding exchange request: %w", err))
		return
	}
	board := s.exchanges.get(xreq.Token)
	if board == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no exchange session %q", xreq.Token))
		return
	}
	for _, f := range xreq.Facts {
		board.Publish(f)
	}
	facts, next := board.Since(xreq.Since)
	writeJSON(w, http.StatusOK, exchangeResponse{Facts: facts, Next: next})
}
