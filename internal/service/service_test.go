package service

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"seadopt/internal/arch"
	"seadopt/internal/ingest"
	"seadopt/internal/taskgraph"
)

// mpeg2Problem is the canonical fast workload: ~15 scaling combinations on
// 4 cores / 3 levels.
func mpeg2Problem(t *testing.T, seed int64) *ingest.Problem {
	t.Helper()
	return &ingest.Problem{
		Graph:    taskgraph.MPEG2(),
		Platform: arch.MustNewPlatform(4, arch.ARM7Levels3()),
		Options: ingest.Options{
			DeadlineSec:      taskgraph.MPEG2Deadline,
			StreamIterations: taskgraph.MPEG2Frames,
			Seed:             seed,
		},
	}
}

// slowProblem is a workload big enough to still be running while a test
// cancels it or queues behind it.
func slowProblem(t *testing.T) *ingest.Problem {
	t.Helper()
	return &ingest.Problem{
		Graph:    taskgraph.MustRandom(taskgraph.DefaultRandomConfig(60), 3),
		Platform: arch.MustNewPlatform(6, arch.ARM7Levels3()),
		Options: ingest.Options{
			DeadlineSec: taskgraph.RandomDeadline(60),
			SearchMoves: 500_000,
			Seed:        3,
		},
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		_ = s.Close(ctx)
	})
	return s
}

// waitState polls until the job reaches a terminal state (or the wanted
// one) and returns the snapshot.
func waitState(t *testing.T, s *Server, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st, err := s.Job(id)
		if err != nil {
			t.Fatalf("Job(%s): %v", id, err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitRunsToDone(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	st, err := s.Submit(mpeg2Problem(t, 2010), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh submission in state %s", st.State)
	}
	final := waitState(t, s, st.ID, StateDone)
	if len(final.Result) == 0 {
		t.Fatal("done job has no result payload")
	}
	if !strings.Contains(string(final.Result), "\"scaling\"") {
		t.Fatalf("result does not look like a wire design: %s", final.Result)
	}
	if final.Summary == "" {
		t.Fatal("done job has no summary")
	}
	if final.Completed == 0 || final.Completed != final.Total {
		t.Fatalf("progress %d/%d after completion", final.Completed, final.Total)
	}
	if final.FinishedAt.IsZero() {
		t.Fatal("done job has no finish timestamp")
	}
}

// TestSingleFlightAndCache is the acceptance criterion at the core level:
// 8 concurrent submitters of one problem, one engine execution, identical
// result bytes, and a cache hit on a later resubmission.
func TestSingleFlightAndCache(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	const clients = 8
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := s.Submit(mpeg2Problem(t, 2010), 0)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	var result []byte
	for _, id := range ids {
		st := waitState(t, s, id, StateDone)
		if result == nil {
			result = st.Result
		} else if !bytes.Equal(result, st.Result) {
			t.Fatalf("job %s returned different bytes than its siblings", id)
		}
	}
	m := s.Metrics()
	if m.EngineExecutions != 1 {
		t.Fatalf("engine ran %d times for %d identical submissions, want exactly 1", m.EngineExecutions, clients)
	}
	if m.CacheHits+m.Coalesced != clients-1 {
		t.Fatalf("hits %d + coalesced %d != %d deduplicated submissions", m.CacheHits, m.Coalesced, clients-1)
	}

	// Resubmission after completion is a pure cache hit: done immediately.
	st, err := s.Submit(mpeg2Problem(t, 2010), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || !st.CacheHit {
		t.Fatalf("resubmission state %s cacheHit %v, want done from cache", st.State, st.CacheHit)
	}
	if !bytes.Equal(st.Result, result) {
		t.Fatal("cached result differs from computed result")
	}
	if got := s.Metrics(); got.EngineExecutions != 1 {
		t.Fatalf("resubmission re-ran the engine (%d executions)", got.EngineExecutions)
	}
}

// TestDeterministicAcrossServers: two independent servers (no shared cache)
// produce byte-identical results for the same problem — the property that
// makes the content-addressed cache semantically safe.
func TestDeterministicAcrossServers(t *testing.T) {
	var results [][]byte
	for i := 0; i < 2; i++ {
		s := newTestServer(t, Config{Workers: 1, EngineParallelism: 1 + i*3})
		st, err := s.Submit(mpeg2Problem(t, 2010), 0)
		if err != nil {
			t.Fatal(err)
		}
		final := waitState(t, s, st.ID, StateDone)
		results = append(results, final.Result)
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Fatalf("independent servers (different engine parallelism) disagree:\n%s\nvs\n%s", results[0], results[1])
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	st, err := s.Submit(slowProblem(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateRunning)
	start := time.Now()
	got, err := s.Cancel(st.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if got.State != StateCanceled {
		t.Fatalf("state %s after cancel", got.State)
	}
	// Cancellation must be prompt: the worker frees up long before the
	// multi-second exploration would have finished.
	quick := mpeg2Problem(t, 77)
	st2, err := s.Submit(quick, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st2.ID, StateDone)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("worker took %v to free after cancellation", elapsed)
	}
	// Cancelling a finished job is a conflict.
	if _, err := s.Cancel(st2.ID); !errors.Is(err, ErrFinished) {
		t.Fatalf("cancel of finished job: %v, want ErrFinished", err)
	}
	if _, err := s.Cancel("j-999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel of unknown job: %v, want ErrNotFound", err)
	}
}

func TestCancelQueuedJobAndSharedFlight(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	blocker, err := s.Submit(slowProblem(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker.ID, StateRunning)

	// Two jobs for the same queued problem share one flight.
	p := mpeg2Problem(t, 5)
	a, err := s.Submit(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(mpeg2Problem(t, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Coalesced {
		t.Fatal("second identical queued submission did not coalesce")
	}
	// Cancelling one attached job must not kill the shared flight.
	if _, err := s.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, b.ID, StateDone)
	if len(final.Result) == 0 {
		t.Fatal("surviving coalesced job has no result")
	}
	if st, _ := s.Job(a.ID); st.State != StateCanceled {
		t.Fatalf("canceled sibling ended as %s", st.State)
	}
	// Cancelling the *last* attached job of a queued flight retires it
	// without an engine execution.
	before := s.Metrics().EngineExecutions
	blocker2, err := s.Submit(slowProblem(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker2.ID, StateRunning)
	lone, err := s.Submit(mpeg2Problem(t, 99), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(lone.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(blocker2.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for s.Metrics().Jobs[StateRunning] > 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never drained after cancellations")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.Metrics().EngineExecutions; got > before+1 {
		t.Fatalf("canceled queued flight still executed (%d -> %d)", before, got)
	}
}

// TestResubmitAfterCancelStartsFreshFlight: cancelling the sole job of a
// running flight must unpublish the flight, so an innocent identical
// resubmission starts a fresh engine execution instead of coalescing onto
// the dying one and being reported canceled.
func TestResubmitAfterCancelStartsFreshFlight(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, CacheEntries: -1})
	// Big enough to still be running when the cancel lands, small enough
	// that the fresh flight finishes quickly.
	problem := func() *ingest.Problem {
		p := mpeg2Problem(t, 2010)
		p.Options.SearchMoves = 20_000
		return p
	}
	a, err := s.Submit(problem(), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, a.ID, StateRunning)
	if _, err := s.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(problem(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Coalesced {
		t.Fatal("resubmission coalesced onto a cancelled flight")
	}
	final := waitState(t, s, b.ID, StateDone)
	if len(final.Result) == 0 {
		t.Fatal("fresh flight produced no result")
	}
}

// TestJobRetention: finished job records beyond the retention cap are
// evicted oldest-first, while their results stay servable from the cache.
func TestJobRetention(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, JobRetention: 2})
	var ids []string
	for seed := int64(1); seed <= 4; seed++ {
		st, err := s.Submit(mpeg2Problem(t, seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, st.ID, StateDone)
		ids = append(ids, st.ID)
	}
	for _, id := range ids[:2] {
		if _, err := s.Job(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("job %s should have been evicted, got %v", id, err)
		}
	}
	for _, id := range ids[2:] {
		if st, err := s.Job(id); err != nil || st.State != StateDone {
			t.Errorf("recent job %s evicted or broken: %v", id, err)
		}
	}
	if got := len(s.Jobs()); got != 2 {
		t.Fatalf("listing has %d jobs, want 2", got)
	}
	// The evicted problems still hit the cache.
	st, err := s.Submit(mpeg2Problem(t, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || !st.CacheHit {
		t.Fatalf("evicted problem not served from cache: %s / %v", st.State, st.CacheHit)
	}
}

func TestPriorityOrdersQueue(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	blocker, err := s.Submit(slowProblem(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker.ID, StateRunning)
	low, err := s.Submit(mpeg2Problem(t, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := s.Submit(mpeg2Problem(t, 2), 3)
	if err != nil {
		t.Fatal(err)
	}
	high, err := s.Submit(mpeg2Problem(t, 3), 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	hi := waitState(t, s, high.ID, StateDone)
	md := waitState(t, s, mid.ID, StateDone)
	lo := waitState(t, s, low.ID, StateDone)
	if hi.FinishedAt.After(md.FinishedAt) || md.FinishedAt.After(lo.FinishedAt) {
		t.Fatalf("priority order violated: high %v, mid %v, low %v",
			hi.FinishedAt, md.FinishedAt, lo.FinishedAt)
	}
}

func TestQueueFullAndDraining(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	blocker, err := s.Submit(slowProblem(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker.ID, StateRunning)
	if _, err := s.Submit(mpeg2Problem(t, 1), 0); err != nil {
		t.Fatalf("first queued submission: %v", err)
	}
	accepted := s.Metrics().Submitted
	misses := s.Metrics().CacheMisses
	if _, err := s.Submit(mpeg2Problem(t, 2), 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("beyond QueueDepth: %v, want ErrQueueFull", err)
	}
	// A rejected submission leaves no trace: no job record, no counter.
	if m := s.Metrics(); m.Submitted != accepted || m.CacheMisses != misses {
		t.Fatalf("rejected submission moved counters: submitted %d->%d, misses %d->%d",
			accepted, m.Submitted, misses, m.CacheMisses)
	}
	// Coalescing does not consume queue slots.
	if _, err := s.Submit(mpeg2Problem(t, 1), 0); err != nil {
		t.Fatalf("coalesced submission rejected: %v", err)
	}

	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Submit(mpeg2Problem(t, 3), 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("submission after Close: %v, want ErrDraining", err)
	}
	// Drain let the queued job finish.
	for _, j := range s.Jobs() {
		if !j.State.Terminal() {
			t.Fatalf("job %s left in %s after drain", j.ID, j.State)
		}
	}
}

func TestWatcherReplaysInOrder(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	st, err := s.Submit(mpeg2Problem(t, 2010), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)
	w, err := s.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var events []ProgressEvent
	for {
		ev, ok := w.Next(context.Background())
		if !ok {
			break
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("no progress events replayed")
	}
	for i, ev := range events {
		if ev.Index != i {
			t.Fatalf("event %d has index %d; stream out of enumeration order", i, ev.Index)
		}
		if ev.Total != len(events) {
			t.Fatalf("event %d claims total %d, stream has %d", i, ev.Total, len(events))
		}
	}
}

func TestMetricsRendering(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	st, _ := s.Submit(mpeg2Problem(t, 2010), 0)
	waitState(t, s, st.ID, StateDone)
	var buf bytes.Buffer
	renderMetrics(&buf, s.Metrics())
	out := buf.String()
	for _, want := range []string{
		"seadoptd_queue_depth 0",
		"seadoptd_engine_executions_total 1",
		"seadoptd_jobs{state=\"done\"} 1",
		"seadoptd_jobs{state=\"failed\"} 0",
		"seadoptd_cache_entries 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}
