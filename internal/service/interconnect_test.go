package service

import (
	"testing"
)

// nocPlatformJSON is heteroPlatformJSON behind a contended 2D-mesh NoC —
// the submit envelope's platform field carries the full ingest spec,
// interconnect block included.
const nocPlatformJSON = `{
  "types": [
    {"name": "arm7x3", "freqs_mhz": [200, 100, 66.667]},
    {"name": "arm7x2", "freqs_mhz": [200, 100]}
  ],
  "cores": [
    {"type": "arm7x3", "count": 2},
    {"type": "arm7x2"}
  ],
  "interconnect": {
    "topology": "mesh",
    "bandwidth_bits_per_sec": 4e9,
    "hop_latency_sec": 1e-4
  }
}`

// TestInterconnectSubmission: a contended-NoC platform flows through the
// service end to end — distinct ProblemKey from the ideal-fabric spec,
// distinct result bytes (the fabric genuinely changes the evaluation), and
// a second submission is a pure cache hit under the v5 key.
func TestInterconnectSubmission(t *testing.T) {
	srv, ts := newHTTPServer(t, Config{Workers: 2, EngineParallelism: 2})

	noc := heteroEnvelope(t, nocPlatformJSON, 60)
	ideal := heteroEnvelope(t, heteroPlatformJSON, 60)

	stNoc := postJob(t, ts.URL, noc)
	stIdeal := postJob(t, ts.URL, ideal)
	doneNoc := waitJobHTTP(t, ts.URL, stNoc.ID, StateDone)
	doneIdeal := waitJobHTTP(t, ts.URL, stIdeal.ID, StateDone)

	if doneNoc.Key == doneIdeal.Key {
		t.Errorf("contended and ideal platforms share ProblemKey %s", doneNoc.Key)
	}
	if len(doneNoc.Result) == 0 || len(doneIdeal.Result) == 0 {
		t.Fatal("a job finished without a result")
	}
	if string(doneNoc.Result) == string(doneIdeal.Result) {
		t.Error("contended and ideal platforms produced identical result bytes")
	}

	before := srv.Metrics().CacheHits
	st := postJob(t, ts.URL, noc)
	if st.State != StateDone || !st.CacheHit {
		t.Errorf("resubmission state %s cacheHit=%v, want done cache hit", st.State, st.CacheHit)
	}
	if got := srv.Metrics().CacheHits; got != before+1 {
		t.Errorf("cache hits went %d → %d, want +1", before, got)
	}
}
