package service

import (
	"fmt"
	"io"
)

// allStates fixes the /metrics rendering order so every per-state gauge is
// always present (a state with zero jobs still exports 0 — scrapers should
// never see series appear and disappear).
var allStates = []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled}

// renderMetrics writes the snapshot in the Prometheus text exposition
// format under the seadoptd_ namespace.
func renderMetrics(w io.Writer, m Metrics) {
	gauge := func(name, help string, value int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, value)
	}
	counter := func(name, help string, value int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, value)
	}

	gauge("seadoptd_queue_depth", "Flights waiting for a worker.", int64(m.QueueDepth))
	gauge("seadoptd_workers", "Size of the worker pool.", int64(m.Workers))
	draining := int64(0)
	if m.Draining {
		draining = 1
	}
	gauge("seadoptd_draining", "1 while the server drains for shutdown.", draining)
	gauge("seadoptd_cache_entries", "Results held by the LRU cache.", int64(m.CacheEntries))
	gauge("seadoptd_cache_capacity", "Configured cache capacity.", int64(m.CacheCapacity))
	counter("seadoptd_cache_hits_total", "Jobs answered from the result cache.", m.CacheHits)
	counter("seadoptd_cache_misses_total", "Submissions that missed the result cache.", m.CacheMisses)
	counter("seadoptd_coalesced_total", "Jobs coalesced onto an in-flight identical problem.", m.Coalesced)
	counter("seadoptd_engine_executions_total", "Underlying optimizer executions.", m.EngineExecutions)
	counter("seadoptd_jobs_submitted_total", "Jobs accepted for processing.", m.Submitted)
	counter("seadoptd_combinations_explored_total", "Scaling combinations the mapper evaluated.", m.CombinationsExplored)
	counter("seadoptd_combinations_pruned_total", "Scaling combinations skipped by branch-and-bound pruning.", m.CombinationsPruned)
	counter("seadoptd_pareto_executions_total", "Pareto-mode engine executions.", m.ParetoExecutions)
	gauge("seadoptd_pareto_frontier_size", "Frontier size of the most recently finished pareto execution.", m.ParetoFrontierSize)

	fmt.Fprintf(w, "# HELP seadoptd_jobs Jobs per lifecycle state.\n# TYPE seadoptd_jobs gauge\n")
	for _, st := range allStates {
		fmt.Fprintf(w, "seadoptd_jobs{state=%q} %d\n", st, m.Jobs[st])
	}
}
