package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// allStates fixes the /metrics rendering order so every per-state gauge is
// always present (a state with zero jobs still exports 0 — scrapers should
// never see series appear and disappear) and always in this order, so
// scrape-diff tooling sees byte-stable output.
var allStates = []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled}

// renderMetrics writes the snapshot in the Prometheus text exposition
// format (v0.0.4) under the seadoptd_ namespace: the operational
// counters/gauges, the latency histograms, Go runtime health and the build
// identity. All map-derived series are emitted in sorted label order so the
// output is deterministic for a fixed snapshot.
func renderMetrics(w io.Writer, m Metrics) {
	gauge := func(name, help string, value int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, value)
	}
	counter := func(name, help string, value int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, value)
	}

	gauge("seadoptd_queue_depth", "Flights waiting for a worker.", int64(m.QueueDepth))
	gauge("seadoptd_workers", "Size of the worker pool.", int64(m.Workers))
	draining := int64(0)
	if m.Draining {
		draining = 1
	}
	gauge("seadoptd_draining", "1 while the server drains for shutdown.", draining)
	gauge("seadoptd_cache_entries", "Results held by the LRU cache.", int64(m.CacheEntries))
	gauge("seadoptd_cache_capacity", "Configured cache capacity.", int64(m.CacheCapacity))
	counter("seadoptd_cache_hits_total", "Jobs answered from the result cache.", m.CacheHits)
	counter("seadoptd_cache_misses_total", "Submissions that missed the result cache.", m.CacheMisses)
	counter("seadoptd_coalesced_total", "Jobs coalesced onto an in-flight identical problem.", m.Coalesced)
	counter("seadoptd_engine_executions_total", "Underlying optimizer executions.", m.EngineExecutions)
	counter("seadoptd_jobs_submitted_total", "Jobs accepted for processing.", m.Submitted)
	counter("seadoptd_combinations_explored_total", "Scaling combinations the mapper evaluated.", m.CombinationsExplored)
	counter("seadoptd_combinations_pruned_total", "Scaling combinations skipped by branch-and-bound pruning.", m.CombinationsPruned)
	counter("seadoptd_pareto_executions_total", "Pareto-mode engine executions.", m.ParetoExecutions)
	gauge("seadoptd_pareto_frontier_size", "Frontier size of the most recently finished pareto execution.", m.ParetoFrontierSize)
	gauge("seadoptd_result_cache_size", "Results currently held by the LRU result cache.", int64(m.CacheEntries))
	counter("seadoptd_result_cache_evictions_total", "Results dropped from the LRU result cache by its capacity bound.", m.CacheEvictions)
	counter("seadoptd_sweep_points_total", "Sweep points evaluated by batch (mode=sweep) jobs.", m.SweepPoints)
	counter("seadoptd_warm_starts_total", "Engine executions seeded from a fingerprint-matching prior result.", m.WarmStarts)
	counter("seadoptd_sharded_executions_total", "Engine executions fanned out over distributed shards.", m.ShardedExecutions)
	counter("seadoptd_shards_served_total", "Shard ranges executed on behalf of a remote coordinator.", m.ShardsServed)

	fmt.Fprintf(w, "# HELP seadoptd_rejected_total Submissions rejected by admission control, by reason.\n"+
		"# TYPE seadoptd_rejected_total counter\n")
	for _, reason := range rejectReasons {
		fmt.Fprintf(w, "seadoptd_rejected_total{reason=%q} %d\n", reason, m.Rejected[reason])
	}

	fmt.Fprintf(w, "# HELP seadoptd_jobs Jobs per lifecycle state.\n# TYPE seadoptd_jobs gauge\n")
	for _, st := range allStates {
		fmt.Fprintf(w, "seadoptd_jobs{state=%q} %d\n", st, m.Jobs[st])
	}

	renderHistogram(w, "seadoptd_job_queue_wait_seconds",
		"Time flights spent queued before a worker picked them up.",
		"", m.QueueWait)
	renderHistogram(w, "seadoptd_engine_exec_seconds",
		"Wall-clock duration of engine executions.",
		"", m.ExecTime)
	renderHTTPHistograms(w, m.HTTP)

	gauge("seadoptd_goroutines", "Live goroutines.", int64(m.Goroutines))
	gauge("seadoptd_heap_alloc_bytes", "Bytes of allocated heap objects.", int64(m.HeapAllocBytes))
	gauge("seadoptd_heap_sys_bytes", "Bytes of heap obtained from the OS.", int64(m.HeapSysBytes))
	counter("seadoptd_gc_cycles_total", "Completed GC cycles.", int64(m.GCCycles))
	fmt.Fprintf(w, "# HELP seadoptd_gc_pause_seconds_total Cumulative GC stop-the-world pause time.\n"+
		"# TYPE seadoptd_gc_pause_seconds_total counter\nseadoptd_gc_pause_seconds_total %s\n",
		formatFloat(m.GCPauseTotalSec))

	fmt.Fprintf(w, "# HELP seadoptd_build_info Build identity of the running binary; the value is always 1.\n"+
		"# TYPE seadoptd_build_info gauge\nseadoptd_build_info{version=%q,revision=%q,go=%q} 1\n",
		m.BuildVersion, m.BuildRevision, m.BuildGo)
}

// renderHistogram writes one Prometheus histogram family: cumulative
// _bucket series ending at le="+Inf", then _sum and _count. labels, when
// non-empty, is a pre-rendered `name="value"` list applied to every series.
// Passing help == "" suppresses the HELP/TYPE header (the multi-series HTTP
// family prints it once itself).
func renderHistogram(w io.Writer, name, help, labels string, h HistogramSnapshot) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	}
	sep := ""
	suffix := ""
	if labels != "" {
		sep = ","
		suffix = "{" + labels + "}"
	}
	var cum uint64
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatFloat(bound), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatFloat(h.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.Count)
}

// renderHTTPHistograms writes the per-route request-latency family with
// routes in sorted order.
func renderHTTPHistograms(w io.Writer, byRoute map[string]HistogramSnapshot) {
	const name = "seadoptd_http_request_duration_seconds"
	if len(byRoute) == 0 {
		return // a family must not be declared without samples
	}
	fmt.Fprintf(w, "# HELP %s HTTP request latency by route pattern.\n# TYPE %s histogram\n", name, name)
	routes := make([]string, 0, len(byRoute))
	for route := range byRoute {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	for _, route := range routes {
		renderHistogram(w, name, "", fmt.Sprintf("route=%q", route), byRoute[route])
	}
}

// formatFloat renders a float the shortest way that round-trips, matching
// Prometheus client conventions ("0.0001", not "1e-04", for bucket bounds
// in our range).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
