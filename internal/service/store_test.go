package service

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"seadopt/internal/ingest"
)

// newStoreServer boots a Server with the durable store rooted at dir.
func newStoreServer(t *testing.T, dir string, cfg Config) *Server {
	t.Helper()
	cfg.StoreDir = dir
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		_ = s.Close(ctx)
	})
	return s
}

// TestStoreRecoversFinishedJobs: a daemon restarted against the same store
// directory still knows every finished job — same ID, same state, same
// result bytes — serves identical resubmissions from the recovered cache
// without re-running the engine, and continues the job ID sequence instead
// of reissuing recovered IDs.
func TestStoreRecoversFinishedJobs(t *testing.T) {
	dir := t.TempDir()

	s1 := newStoreServer(t, dir, Config{Workers: 1})
	st, err := s1.Submit(mpeg2Problem(t, 2010), 0)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s1, st.ID, StateDone)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	s2 := newStoreServer(t, dir, Config{Workers: 1})
	got, err := s2.Job(st.ID)
	if err != nil {
		t.Fatalf("recovered server lost job %s: %v", st.ID, err)
	}
	if got.State != StateDone {
		t.Fatalf("recovered job state %s, want done", got.State)
	}
	if !bytes.Equal(got.Result, final.Result) {
		t.Fatalf("recovered result bytes differ:\n%s\nvs\n%s", got.Result, final.Result)
	}
	if got.Summary != final.Summary || got.Total != final.Total {
		t.Fatalf("recovered summary/total %q/%d, want %q/%d",
			got.Summary, got.Total, final.Summary, final.Total)
	}

	// An identical resubmission is a cache hit off the recovered journal.
	again, err := s2.Submit(mpeg2Problem(t, 2010), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.State != StateDone {
		t.Fatalf("resubmission after recovery: state %s, cacheHit %v", again.State, again.CacheHit)
	}
	if !bytes.Equal(again.Result, final.Result) {
		t.Fatal("resubmission after recovery returned different bytes")
	}
	if again.ID == st.ID {
		t.Fatalf("resubmission reused recovered job ID %s", st.ID)
	}
	if execs := s2.Metrics().EngineExecutions; execs != 0 {
		t.Fatalf("recovered server ran the engine %d times for known results", execs)
	}

	// The scalar warm-start hint journaled by the first run survives too.
	p := mpeg2Problem(t, 2010)
	fp, err := p.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if hints := s2.warm.Hints(warmScalarKey(fp, p.Options)); len(hints) == 0 {
		t.Fatal("warm-start hints did not survive the restart")
	}
}

// TestStoreRecoversUnfinishedJobs simulates a SIGKILL between acceptance
// and completion: the journal holds an accepted job with no terminal
// record. The restarted server must re-enqueue it under its original ID and
// run it to the same bytes a never-crashed server produces.
func TestStoreRecoversUnfinishedJobs(t *testing.T) {
	dir := t.TempDir()
	p := mpeg2Problem(t, 2010)
	enc, err := p.CanonicalEncoding()
	if err != nil {
		t.Fatal(err)
	}
	key := ingest.EncodingKey(enc)

	// Craft the journal a killed daemon would leave behind: one accepted
	// job, no result — plus a torn final line from the append the kill
	// interrupted, which recovery must ignore.
	store, _, err := openJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := storeRecord{
		Kind: "job", ID: "j-000007", Key: key, Graph: p.Graph.Name(),
		Problem: enc, At: time.Unix(1_700_000_000, 0),
	}
	if err := store.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, storeJournalName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"result","id":"j-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Reference bytes from a server that never crashed.
	ref := newTestServer(t, Config{Workers: 1})
	refSt, err := ref.Submit(mpeg2Problem(t, 2010), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := waitState(t, ref, refSt.ID, StateDone)

	s := newStoreServer(t, dir, Config{Workers: 1})
	got := waitState(t, s, "j-000007", StateDone)
	if !bytes.Equal(got.Result, want.Result) {
		t.Fatalf("re-run recovered job bytes differ:\n%s\nvs\n%s", got.Result, want.Result)
	}
	if got.Summary != want.Summary {
		t.Fatalf("re-run summary %q, want %q", got.Summary, want.Summary)
	}

	// The ID sequence resumes above the recovered job.
	next, err := s.Submit(mpeg2Problem(t, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if next.ID != "j-000008" {
		t.Fatalf("post-recovery submission got ID %s, want j-000008", next.ID)
	}
}

// TestStoreCoalescesRecoveredDuplicates: two accepted-but-unfinished jobs
// over the same problem share one recovered flight — a single engine
// execution finishes both with identical bytes.
func TestStoreCoalescesRecoveredDuplicates(t *testing.T) {
	dir := t.TempDir()
	p := mpeg2Problem(t, 2010)
	enc, err := p.CanonicalEncoding()
	if err != nil {
		t.Fatal(err)
	}
	key := ingest.EncodingKey(enc)
	store, _, err := openJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"j-000001", "j-000002"} {
		rec := storeRecord{
			Kind: "job", ID: id, Key: key, Graph: p.Graph.Name(),
			Problem: enc, At: time.Unix(1_700_000_000, 0),
		}
		if err := store.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	s := newStoreServer(t, dir, Config{Workers: 2})
	a := waitState(t, s, "j-000001", StateDone)
	b := waitState(t, s, "j-000002", StateDone)
	if !bytes.Equal(a.Result, b.Result) {
		t.Fatal("recovered duplicate jobs finished with different bytes")
	}
	if execs := s.Metrics().EngineExecutions; execs != 1 {
		t.Fatalf("recovered duplicates ran the engine %d times, want 1", execs)
	}
}

// TestStoreRecoversCanceledJobs: a cancel record makes the job terminal on
// recovery — it must not re-run.
func TestStoreRecoversCanceledJobs(t *testing.T) {
	dir := t.TempDir()
	s1 := newStoreServer(t, dir, Config{Workers: 1})
	blocked := make(chan struct{})
	s1.hookExecute = func(*flight) { <-blocked }
	st, err := s1.Submit(mpeg2Problem(t, 2010), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	close(blocked)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	s2 := newStoreServer(t, dir, Config{Workers: 1})
	got, err := s2.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled {
		t.Fatalf("recovered canceled job in state %s", got.State)
	}
	if execs := s2.Metrics().EngineExecutions; execs != 0 {
		t.Fatalf("canceled job re-ran %d times after recovery", execs)
	}
}
