package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"seadopt/internal/arch"
	"seadopt/internal/buildinfo"
	"seadopt/internal/ingest"
	"seadopt/internal/trace"
)

// submitRequest is the JSON envelope of POST /v1/jobs. The graph field is
// either an inline canonical-JSON graph object (format "json") or a string
// holding the document in any supported format. The platform field is
// either the shorthand {"cores": C, "levels": L} ARM7 form or a full
// heterogeneous platform spec (an object with a "types" list; see
// ingest.PlatformSpec).
type submitRequest struct {
	// Format of the graph payload: "json", "tgff", "dot"; "" sniffs.
	Format string `json:"format"`
	// Graph is the task graph document.
	Graph json.RawMessage `json:"graph"`
	// Platform selects the MPSoC configuration; absent selects the server's
	// default platform (4 ARM7 cores × Table I unless -platform overrode it).
	Platform json.RawMessage `json:"platform"`
	// Platforms lists EXTRA platforms a mode=sweep submission crosses its
	// deadline sweep with, each in the same shorthand-or-spec syntax as the
	// platform field. Rejected outside sweep mode.
	Platforms []json.RawMessage `json:"platforms"`
	// Options are the result-affecting optimization knobs.
	Options ingest.Options `json:"options"`
	// Priority orders the queue; higher runs first. Default 0.
	Priority int `json:"priority"`
}

// platformShorthand is the homogeneous {"cores", "levels"} ARM7 form.
type platformShorthand struct {
	// Cores is the MPSoC core count (default 4).
	Cores int `json:"cores"`
	// Levels is the DVS level-table size: 2, 3 or 4 (default 3).
	Levels int `json:"levels"`
}

func (p platformShorthand) build() (*arch.Platform, error) {
	if p.Cores == 0 {
		p.Cores = 4
	}
	if p.Levels == 0 {
		p.Levels = 3
	}
	table, err := arch.ARM7LevelsFor(p.Levels)
	if err != nil {
		return nil, err
	}
	return arch.NewPlatform(p.Cores, table)
}

// buildPlatform resolves the request's platform field: absent → the server
// default; an object with a "types" key → a full heterogeneous spec; any
// other object → the ARM7 shorthand.
func (req *submitRequest) buildPlatform(fallback *arch.Platform) (*arch.Platform, error) {
	raw := req.Platform
	if len(raw) == 0 || string(raw) == "null" {
		if fallback != nil {
			return fallback, nil
		}
		return platformShorthand{}.build()
	}
	return buildOnePlatform(raw)
}

// buildOnePlatform resolves one platform document: an object with a "types"
// key → a full heterogeneous spec; any other object → the ARM7 shorthand.
func buildOnePlatform(raw json.RawMessage) (*arch.Platform, error) {
	var probe struct {
		Types json.RawMessage `json:"types"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("decoding platform: %w", err)
	}
	if probe.Types != nil {
		return ingest.ParsePlatformSpec(raw)
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var short platformShorthand
	if err := dec.Decode(&short); err != nil {
		return nil, fmt.Errorf("decoding platform: %w (want {\"cores\",\"levels\"} or a full spec with \"types\")", err)
	}
	return short.build()
}

// buildSweepPlatforms resolves the envelope's extra sweep platforms.
func (req *submitRequest) buildSweepPlatforms() ([]*arch.Platform, error) {
	if len(req.Platforms) == 0 {
		return nil, nil
	}
	out := make([]*arch.Platform, len(req.Platforms))
	for i, raw := range req.Platforms {
		p, err := buildOnePlatform(raw)
		if err != nil {
			return nil, fmt.Errorf("platforms[%d]: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs               submit a job (JSON envelope, or a raw
//	                              TGFF/DOT/JSON body with query params)
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          job status + result
//	DELETE /v1/jobs/{id}          cancel
//	GET    /v1/jobs/{id}/progress Server-Sent-Events progress stream
//	GET    /v1/jobs/{id}/stats    engine telemetry (phase timings, counters)
//	GET    /v1/jobs/{id}/trace    worker-timeline Chrome trace (perfetto)
//	GET    /healthz               liveness/readiness + build info
//	GET    /metrics               Prometheus text metrics
//
// Every request is instrumented: it gets an X-Request-Id, its latency lands
// in the per-route histogram, and it is logged through Config.Logger.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /v1/jobs/{id}/stats", s.handleStats)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Peer-to-peer distributed exploration (see dist.go): workers execute
	// shard ranges for coordinators, coordinators serve the fact exchange
	// their remote shards prune against.
	mux.HandleFunc("POST /internal/v1/shard", s.handleShard)
	mux.HandleFunc("POST /internal/v1/exchange", s.handleExchange)
	return s.instrument(mux)
}

// instrument wraps the mux with request IDs, per-route latency histograms
// and structured request logs. The route label is the mux pattern (not the
// raw path), so path parameters don't explode the label space.
func (s *Server) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := fmt.Sprintf("r-%06d", s.reqSeq.Add(1))
		w.Header().Set("X-Request-Id", reqID)
		route := "none"
		if _, pattern := mux.Handler(r); pattern != "" {
			route = pattern
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := s.cfg.Now()
		mux.ServeHTTP(sw, r)
		dur := s.cfg.Now().Sub(start).Seconds()
		s.httpHist(route).Observe(dur)
		s.cfg.Logger.Info("http request",
			"request_id", reqID, "method", r.Method, "route", route,
			"path", r.URL.Path, "status", sw.code, "duration_sec", dur)
	})
}

// statusWriter captures the response code for the request log. It forwards
// Flush so SSE streaming keeps working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.limiter != nil {
		if ok, wait := s.limiter.allow(clientKey(r)); !ok {
			s.rejectedRate.Add(1)
			retry := retryAfterSeconds(wait)
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			s.cfg.Logger.Warn("submission rejected",
				"reason", rejectRateLimit, "client", clientKey(r), "retry_after_sec", retry)
			httpError(w, http.StatusTooManyRequests,
				fmt.Errorf("client submission rate above %.3g/s; retry after %ds", s.cfg.RateLimit, retry))
			return
		}
	}
	body, err := s.readBody(r)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.rejectedPayload.Add(1)
			s.cfg.Logger.Warn("submission rejected",
				"reason", rejectPayloadTooLarge, "limit_bytes", mbe.Limit)
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req, err := decodeSubmit(r, body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	graphDoc, format, err := req.graphDocument()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	g, err := ingest.ParseBytes(format, graphDoc)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	platform, err := req.buildPlatform(s.cfg.DefaultPlatform)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sweepPlatforms, err := req.buildSweepPlatforms()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.Submit(&ingest.Problem{Graph: g, Platform: platform, SweepPlatforms: sweepPlatforms, Options: req.Options}, req.Priority)
	if err != nil {
		switch {
		case errors.Is(err, ErrDraining):
			s.rejectedDraining.Add(1)
			s.cfg.Logger.Warn("submission rejected", "reason", rejectDraining)
			httpError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrQueueFull):
			// Backpressure, not a client fault: the queue will drain, so
			// 503 + Retry-After tells well-behaved clients to come back.
			s.rejectedQueue.Add(1)
			w.Header().Set("Retry-After", "1")
			s.cfg.Logger.Warn("submission rejected",
				"reason", rejectQueueFull, "queue_depth", s.cfg.QueueDepth)
			httpError(w, http.StatusServiceUnavailable, err)
		default:
			httpError(w, http.StatusBadRequest, err)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	code := http.StatusAccepted
	if st.State == StateDone {
		code = http.StatusOK // served from the result cache
	}
	writeJSON(w, code, st)
}

// readBody caps submissions at Config.MaxBodyBytes (16 MiB by default); a
// task graph bigger than that is a mistake, not a workload. Oversized
// bodies surface the *http.MaxBytesError so the caller can answer 413.
func (s *Server) readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, mbe
		}
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("empty request body; POST a job envelope or a task-graph document")
	}
	return body, nil
}

// decodeSubmit accepts either the JSON envelope (application/json or a body
// opening with '{' that decodes as one) or a raw task-graph document with
// the job parameters in the query string (?format=dot&cores=4&...). An
// explicit ?format= always selects raw-body mode, whatever the
// Content-Type — a canonical-JSON graph POSTed with ?format=json must not
// be mistaken for an envelope.
func decodeSubmit(r *http.Request, body []byte) (*submitRequest, error) {
	ct := r.Header.Get("Content-Type")
	rawMode := r.URL.Query().Get("format") != ""
	if !rawMode && (strings.Contains(ct, "json") || (ct == "" && len(body) > 0 && body[0] == '{')) {
		var req submitRequest
		dec := json.NewDecoder(strings.NewReader(string(body)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("decoding job envelope: %w (raw-body submissions need ?format=)", err)
		}
		if len(req.Graph) == 0 {
			return nil, fmt.Errorf("job envelope is missing the graph field")
		}
		return &req, nil
	}
	// Raw-body mode: the body is the graph document itself.
	q := r.URL.Query()
	req := &submitRequest{Format: q.Get("format")}
	data, err := json.Marshal(string(body))
	if err != nil {
		return nil, err
	}
	req.Graph = data
	intq := func(name string, dst *int) error {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("query param %s=%q is not an integer", name, v)
			}
			*dst = n
		}
		return nil
	}
	var short platformShorthand
	for name, dst := range map[string]*int{
		"cores":             &short.Cores,
		"levels":            &short.Levels,
		"stream_iterations": &req.Options.StreamIterations,
		"search_moves":      &req.Options.SearchMoves,
		"sample_budget":     &req.Options.SampleBudget,
		"priority":          &req.Priority,
	} {
		if err := intq(name, dst); err != nil {
			return nil, err
		}
	}
	if short != (platformShorthand{}) {
		enc, err := json.Marshal(short)
		if err != nil {
			return nil, err
		}
		req.Platform = enc
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("query param seed=%q is not an integer", v)
		}
		req.Options.Seed = n
	}
	for name, dst := range map[string]*float64{
		"ser":          &req.Options.SER,
		"deadline_sec": &req.Options.DeadlineSec,
	} {
		if v := q.Get(name); v != "" {
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("query param %s=%q is not a number", name, v)
			}
			*dst = x
		}
	}
	req.Options.Baseline = q.Get("baseline")
	req.Options.Strategy = q.Get("strategy")
	req.Options.Mode = q.Get("mode")
	req.Options.Objectives = q.Get("objectives")
	// Sweep-mode parameters: a comma-separated deadline list, the per-point
	// reduction, and (sets containing commas themselves) semicolon-separated
	// objective sets.
	req.Options.SweepPointMode = q.Get("sweep_point_mode")
	if v := q.Get("sweep_deadlines"); v != "" {
		for _, part := range strings.Split(v, ",") {
			x, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return nil, fmt.Errorf("query param sweep_deadlines entry %q is not a number", part)
			}
			req.Options.SweepDeadlines = append(req.Options.SweepDeadlines, x)
		}
	}
	if v := q.Get("sweep_objective_sets"); v != "" {
		req.Options.SweepObjectiveSets = strings.Split(v, ";")
	}
	return req, nil
}

// graphDocument resolves the envelope's graph field to document bytes and a
// format: a JSON string is a text document in any format, an object is the
// canonical JSON graph.
func (req *submitRequest) graphDocument() ([]byte, ingest.Format, error) {
	doc := []byte(req.Graph)
	if len(doc) > 0 && doc[0] == '"' {
		var text string
		if err := json.Unmarshal(doc, &text); err != nil {
			return nil, "", fmt.Errorf("decoding graph string: %w", err)
		}
		doc = []byte(text)
	} else if req.Format != "" && req.Format != "json" && req.Format != "auto" {
		return nil, "", fmt.Errorf("format %q needs the graph as a string, got a JSON object", req.Format)
	}
	if req.Format == "" || req.Format == "auto" {
		f, err := ingest.Detect(doc)
		if err != nil {
			return nil, "", err
		}
		return doc, f, nil
	}
	f, err := ingest.ParseFormat(req.Format)
	if err != nil {
		return nil, "", err
	}
	return doc, f, nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	if state := r.URL.Query().Get("state"); state != "" {
		filtered := jobs[:0]
		for _, j := range jobs {
			if string(j.State) == state {
				filtered = append(filtered, j)
			}
		}
		jobs = filtered
	}
	// The list view elides result and telemetry payloads; fetch a single
	// job (or its /stats) for those.
	for i := range jobs {
		jobs[i].Result = nil
		jobs[i].Summary = ""
		jobs[i].Stats = nil
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		httpError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrFinished):
		httpError(w, http.StatusConflict, err)
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

// handleProgress streams a job's exploration progress as Server-Sent
// Events: one "progress" event per scaling combination, in enumeration
// order (replaying from the start for late subscribers), then a single
// terminal "done" event carrying the job's final status.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	watcher, err := s.Watch(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("response writer does not support streaming"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		ev, ok := watcher.Next(r.Context())
		if !ok {
			break
		}
		data, err := json.Marshal(ev)
		if err != nil {
			break
		}
		fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data)
		flusher.Flush()
	}
	if r.Context().Err() != nil {
		return // client went away; no terminal event to deliver
	}
	if st, err := s.Job(id); err == nil {
		data, err := json.Marshal(st)
		if err == nil {
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
			flusher.Flush()
		}
	}
}

// handleStats serves a finished job's engine-telemetry snapshot. Jobs that
// have not produced one yet (queued/running) answer 409; jobs that never
// will (canceled/failed) also 409, with the state in the message.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	if st.Stats == nil {
		httpError(w, http.StatusConflict,
			fmt.Errorf("job %s has no engine stats (state %s)", st.ID, st.State))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": st.ID, "state": st.State, "engine_stats": st.Stats,
	})
}

// handleTrace serves a finished job's worker timeline as a Chrome trace
// (load it at https://ui.perfetto.dev): one row per engine worker plus an
// events row for incumbent updates and prunes.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	if st.Stats == nil {
		httpError(w, http.StatusConflict,
			fmt.Errorf("job %s has no engine stats to trace (state %s)", st.ID, st.State))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", st.ID+"-trace.json"))
	w.WriteHeader(http.StatusOK)
	_ = trace.WriteExploration(w, "seadopt exploration: "+st.Graph+" ("+st.ID+")", st.Stats)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"status": status, "build": buildinfo.Read()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	renderMetrics(w, s.Metrics())
}

// writeJSON renders responses compactly: an embedded result payload must
// reach every client byte-identically, whether it rides a job GET, a submit
// response or the SSE terminal event, so no path may re-indent it.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
