package service

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestStrategyInProblemIdentity: the strategy job option participates in
// the cache key, so an exact and a sampled submission of the same workload
// are different problems and never share results.
func TestStrategyInProblemIdentity(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})

	exact := mpeg2Problem(t, 2010)
	st1, err := s.Submit(exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	sampled := mpeg2Problem(t, 2010)
	sampled.Options.Strategy = "sampled"
	sampled.Options.SampleBudget = 5
	st2, err := s.Submit(sampled, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Key == st2.Key {
		t.Fatalf("sampled and exact submissions share key %s", st1.Key)
	}
	f1 := waitState(t, s, st1.ID, StateDone)
	f2 := waitState(t, s, st2.ID, StateDone)
	if len(f1.Result) == 0 || len(f2.Result) == 0 {
		t.Fatal("missing results")
	}
	m := s.Metrics()
	if m.EngineExecutions != 2 {
		t.Fatalf("engine executed %d times for two distinct-strategy problems, want 2", m.EngineExecutions)
	}

	// Exhaustive is a distinct problem from the default branch-and-bound
	// key too (cached results never cross strategies), even though the
	// designs are byte-identical.
	exh := mpeg2Problem(t, 2010)
	exh.Options.Strategy = "exhaustive"
	st3, err := s.Submit(exh, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Key == st1.Key {
		t.Fatal("exhaustive submission shares the branch-and-bound key")
	}
	f3 := waitState(t, s, st3.ID, StateDone)
	if !bytes.Equal(f3.Result, f1.Result) {
		t.Fatalf("exhaustive and branch-and-bound designs differ:\n%s\nvs\n%s", f3.Result, f1.Result)
	}
}

// TestDefaultStrategyApplied: a daemon-level default strategy is folded in
// before hashing, so omitting the option equals naming the default.
func TestDefaultStrategyApplied(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, DefaultStrategy: "exhaustive"})
	st1, err := s.Submit(mpeg2Problem(t, 2010), 0)
	if err != nil {
		t.Fatal(err)
	}
	explicit := mpeg2Problem(t, 2010)
	explicit.Options.Strategy = "exhaustive"
	st2, err := s.Submit(explicit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Key != st2.Key {
		t.Fatalf("default-strategy submission keyed %s, explicit %s", st1.Key, st2.Key)
	}
	waitState(t, s, st1.ID, StateDone)
}

// TestProgressCarriesPruning: under the default strategy the MPEG-2
// exploration prunes/skips part of the space; the SSE-visible event stream
// must mark those combinations and carry a running pruned count, and the
// engine counters must add up to the enumeration size.
func TestProgressCarriesPruning(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	st, err := s.Submit(mpeg2Problem(t, 2010), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)
	w, err := s.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var events []ProgressEvent
	for {
		ev, ok := w.Next(context.Background())
		if !ok {
			break
		}
		events = append(events, ev)
	}
	if len(events) != 15 {
		t.Fatalf("%d progress events, want 15 (every combination resolves)", len(events))
	}
	pruned := 0
	for i, ev := range events {
		if ev.Index != i || ev.Combination != i {
			t.Fatalf("event %d has index %d / combination %d", i, ev.Index, ev.Combination)
		}
		if ev.Pruned || ev.Skipped {
			pruned++
			if ev.PowerW != 0 || ev.Gamma != 0 {
				t.Errorf("pruned event %d carries design metrics", i)
			}
		}
		if ev.PrunedTotal != pruned {
			t.Errorf("event %d: pruned_total %d, want %d", i, ev.PrunedTotal, pruned)
		}
	}
	if pruned == 0 {
		t.Error("branch-and-bound avoided nothing on MPEG-2; bound never engaged")
	}
	m := s.Metrics()
	if m.CombinationsPruned != int64(pruned) {
		t.Errorf("combinations_pruned counter %d, events say %d", m.CombinationsPruned, pruned)
	}
	if m.CombinationsExplored+m.CombinationsPruned != 15 {
		t.Errorf("explored %d + pruned %d != 15", m.CombinationsExplored, m.CombinationsPruned)
	}

	var buf bytes.Buffer
	renderMetrics(&buf, m)
	out := buf.String()
	for _, want := range []string{
		"seadoptd_combinations_explored_total",
		"seadoptd_combinations_pruned_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestSampledJobRuns: a sampled job explores exactly its budget and
// reports it as the progress total.
func TestSampledJobRuns(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	p := mpeg2Problem(t, 2010)
	p.Options.Strategy = "sampled"
	p.Options.SampleBudget = 6
	st, err := s.Submit(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, StateDone)
	if final.Total != 6 || final.Completed != 6 {
		t.Fatalf("sampled job progress %d/%d, want 6/6", final.Completed, final.Total)
	}
}

// TestInvalidStrategyRejected: an unknown strategy fails at submission
// time, not inside the engine.
func TestInvalidStrategyRejected(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	p := mpeg2Problem(t, 2010)
	p.Options.Strategy = "greedy"
	if _, err := s.Submit(p, 0); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
