package service

import (
	"fmt"
	"sync"
)

// histogram is a fixed-bucket latency histogram in the Prometheus style:
// observations land in the first bucket whose upper bound is >= the value,
// with an implicit +Inf overflow bucket, and the exposition renders
// cumulative bucket counts plus _sum and _count. Buckets are fixed at
// construction so concurrent observers only touch counters under a mutex.
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds (exclusive of +Inf)
	counts []uint64  // len(bounds)+1; the last slot is the +Inf bucket
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("histogram bounds not ascending: %v", bounds))
		}
	}
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Snapshot copies the histogram state for rendering.
func (h *histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram: per-bucket
// (non-cumulative) counts aligned with Bounds, plus the +Inf overflow in the
// final Counts slot.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// expBuckets returns n log-spaced upper bounds start, start*factor,
// start*factor², ... — the fixed bucket layout every service histogram uses.
func expBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("expBuckets(%v, %v, %d): need start>0, factor>1, n>=1", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// latencyBuckets is the shared layout for the queue-wait, engine-execution
// and HTTP-latency histograms: 100 µs to ~105 s in ×2 steps.
func latencyBuckets() []float64 { return expBuckets(100e-6, 2, 21) }
