package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"seadopt"
)

// fakeClock is an injectable Config.Now: tests advance it explicitly and
// assert exact queue-wait and run durations with no sleeping or slack.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestExactJobTiming drives the job lifecycle against a fake clock: the
// execution hook holds the single worker inside a flight while the test
// advances time, so QueueWaitSec/RunSec and the latency histograms must
// come out exact, not approximate.
func TestExactJobTiming(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	s := newTestServer(t, Config{Workers: 1, Now: clk.Now})
	entered := make(chan struct{})
	release := make(chan struct{})
	s.hookExecute = func(*flight) {
		entered <- struct{}{}
		<-release
	}

	// Job A is picked up at T+0 and blocks inside the hook.
	a, err := s.Submit(mpeg2Problem(t, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	// Job B (distinct problem) queues behind it at T+2s.
	clk.Advance(2 * time.Second)
	b, err := s.Submit(mpeg2Problem(t, 2), 0)
	if err != nil {
		t.Fatal(err)
	}

	clk.Advance(3 * time.Second) // now T+5s
	st, err := s.Job(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRunning {
		t.Fatalf("job A in state %s, want running", st.State)
	}
	if st.QueueWaitSec != 0 || st.RunSec != 5 {
		t.Errorf("running job A: queue_wait=%v run=%v, want 0 and 5", st.QueueWaitSec, st.RunSec)
	}
	if st, err := s.Job(b.ID); err != nil || st.State != StateQueued || st.RunSec != 0 {
		t.Errorf("job B: state=%v run=%v err=%v, want queued with no run time", st.State, st.RunSec, err)
	}

	release <- struct{}{} // A finishes at T+5s
	aDone := waitState(t, s, a.ID, StateDone)
	if aDone.QueueWaitSec != 0 || aDone.RunSec != 5 {
		t.Errorf("done job A: queue_wait=%v run=%v, want 0 and 5", aDone.QueueWaitSec, aDone.RunSec)
	}

	<-entered // B dequeued at T+5s after waiting 3s
	clk.Advance(1 * time.Second)
	release <- struct{}{} // B finishes at T+6s
	bDone := waitState(t, s, b.ID, StateDone)
	if bDone.QueueWaitSec != 3 || bDone.RunSec != 1 {
		t.Errorf("done job B: queue_wait=%v run=%v, want 3 and 1", bDone.QueueWaitSec, bDone.RunSec)
	}

	m := s.Metrics()
	if m.QueueWait.Count != 2 || m.QueueWait.Sum != 3 {
		t.Errorf("queue-wait histogram: count=%d sum=%v, want 2 and 3", m.QueueWait.Count, m.QueueWait.Sum)
	}
	if m.ExecTime.Count != 2 || m.ExecTime.Sum != 6 {
		t.Errorf("exec-time histogram: count=%d sum=%v, want 2 and 6", m.ExecTime.Count, m.ExecTime.Sum)
	}
}

// statsResponse is the wire shape of GET /v1/jobs/{id}/stats.
type statsResponse struct {
	ID          string                `json:"id"`
	State       State                 `json:"state"`
	EngineStats *seadopt.ExploreStats `json:"engine_stats"`
}

func getStats(t *testing.T, base, id string) (int, statsResponse) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr statsResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, sr
}

func checkEngineStats(t *testing.T, label string, st *seadopt.ExploreStats) {
	t.Helper()
	if st == nil {
		t.Fatalf("%s: no engine stats", label)
	}
	if st.WallNanos <= 0 {
		t.Errorf("%s: wall clock %d ns", label, st.WallNanos)
	}
	if st.Combos.Total == 0 {
		t.Errorf("%s: zero combinations", label)
	}
	if got := st.Combos.Evaluated + st.Combos.Pruned + st.Combos.Skipped; got != st.Combos.Total {
		t.Errorf("%s: verdicts don't partition: %+v", label, st.Combos)
	}
	if st.Combos.MapperRuns == 0 {
		t.Errorf("%s: mapper never ran", label)
	}
	if len(st.Workers) == 0 {
		t.Errorf("%s: no per-worker stats", label)
	}
	if st.Phases.MapperNanos <= 0 {
		t.Errorf("%s: mapper phase clock %d ns", label, st.Phases.MapperNanos)
	}
}

// TestHTTPStatsAndTrace covers the two telemetry endpoints for a scalar and
// a pareto job: 404 for unknown jobs, per-phase stats for done jobs, a
// perfetto-loadable trace with one named row per engine worker, and the SSE
// terminal event carrying the same engine stats.
func TestHTTPStatsAndTrace(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 2})

	for _, path := range []string{"/v1/jobs/nope/stats", "/v1/jobs/nope/trace"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}

	scalar := postJob(t, ts.URL, mpeg2Envelope(t))
	waitJobHTTP(t, ts.URL, scalar.ID, StateDone)

	code, sr := getStats(t, ts.URL, scalar.ID)
	if code != http.StatusOK {
		t.Fatalf("GET stats for done scalar job = %d", code)
	}
	if sr.ID != scalar.ID || sr.State != StateDone {
		t.Errorf("stats envelope: id=%s state=%s", sr.ID, sr.State)
	}
	checkEngineStats(t, "scalar", sr.EngineStats)

	// The SSE terminal event carries the same stats inline.
	_, done := readSSE(t, ts.URL, scalar.ID)
	if done.Stats == nil || done.Stats.Combos.Total != sr.EngineStats.Combos.Total {
		t.Error("SSE done event does not carry the job's engine stats")
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + scalar.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content type %q", ct)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, scalar.ID) {
		t.Errorf("trace content disposition %q does not name the job", cd)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	rows := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" && ev.Name == "thread_name" {
			rows[ev.TID] = true
		}
	}
	// One row per engine worker plus the exploration-events row.
	if want := len(sr.EngineStats.Workers) + 1; len(rows) != want {
		t.Errorf("trace has %d named rows, want %d (one per worker + events)", len(rows), want)
	}

	// Pareto jobs expose the same telemetry surface.
	env := mpeg2Envelope(t)
	env = []byte(strings.Replace(string(env), `"options":{`, `"options":{"mode":"pareto",`, 1))
	pareto := postJob(t, ts.URL, env)
	waitJobHTTP(t, ts.URL, pareto.ID, StateDone)
	code, pr := getStats(t, ts.URL, pareto.ID)
	if code != http.StatusOK {
		t.Fatalf("GET stats for done pareto job = %d", code)
	}
	checkEngineStats(t, "pareto", pr.EngineStats)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + pareto.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET trace for pareto job = %d", resp.StatusCode)
	}
}

// TestHTTPStatsConflictWhileRunning: stats and trace answer 409 until the
// job actually has a telemetry snapshot.
func TestHTTPStatsConflictWhileRunning(t *testing.T) {
	s, ts := newHTTPServer(t, Config{Workers: 1})
	release := make(chan struct{})
	s.hookExecute = func(*flight) { <-release }

	st := postJob(t, ts.URL, mpeg2Envelope(t))
	for _, path := range []string{"/stats", "/trace"} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("GET %s before completion = %d, want 409", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "no engine stats") {
			t.Errorf("conflict body %q does not explain the missing stats", body)
		}
	}
	close(release)
	waitJobHTTP(t, ts.URL, st.ID, StateDone)
	if code, _ := getStats(t, ts.URL, st.ID); code != http.StatusOK {
		t.Errorf("GET stats after completion = %d", code)
	}
}

// TestHTTPMetricsLint scrapes /metrics from a live server that has run a
// job and validates the whole exposition with the strict parser — the same
// check the CI integration step performs against a real daemon.
func TestHTTPMetricsLint(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 1})
	st := postJob(t, ts.URL, mpeg2Envelope(t))
	waitJobHTTP(t, ts.URL, st.ID, StateDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if err := LintMetrics(raw); err != nil {
		t.Fatalf("live /metrics fails exposition lint: %v", err)
	}
	out := string(raw)
	for _, want := range []string{
		"# TYPE seadoptd_job_queue_wait_seconds histogram",
		"# TYPE seadoptd_engine_exec_seconds histogram",
		"# TYPE seadoptd_http_request_duration_seconds histogram",
		"seadoptd_build_info{",
		"seadoptd_goroutines ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The engine ran once, so its histogram must hold one observation.
	if !strings.Contains(out, "seadoptd_engine_exec_seconds_count 1") {
		t.Error("engine exec histogram did not record the execution")
	}
}

// TestHTTPRequestIDHeader: every instrumented response carries a request id.
func TestHTTPRequestIDHeader(t *testing.T) {
	_, ts := newHTTPServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("response missing X-Request-Id header")
	}
	var hb struct {
		Status string `json:"status"`
		Build  struct {
			Version string `json:"version"`
			Go      string `json:"go"`
		} `json:"build"`
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	if hb.Build.Go == "" || hb.Build.Version == "" {
		t.Errorf("healthz build info incomplete: %+v", hb.Build)
	}
}
