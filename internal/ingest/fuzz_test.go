package ingest

import (
	"testing"

	"seadopt/internal/taskgraph"
)

// The ingest fuzz targets assert the parser contract on arbitrary input:
// never panic, and either fail with an error or return a graph that passes
// the same structural validation every accepted submission passes — so a
// fuzz-found parser bug is a crash or a validation violation, not a silent
// bad graph reaching the engine. CI runs each target briefly
// (-fuzztime a few seconds) as a smoke screen; run them longer locally with
//
//	go test -fuzz FuzzParseTGFF -fuzztime 5m ./internal/ingest
//
// (one target per -fuzz invocation).

// checkParsed validates a graph the parser accepted.
func checkParsed(t *testing.T, g *taskgraph.Graph) {
	t.Helper()
	if g == nil {
		t.Fatal("parser returned nil graph with nil error")
	}
	if err := ValidateGraph(g); err != nil {
		t.Fatalf("parser accepted a graph its own validator rejects: %v", err)
	}
	// The canonical encoding must round-trip whatever we accepted.
	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatalf("accepted graph does not marshal: %v", err)
	}
	if _, err := ParseBytes(FormatJSON, data); err != nil {
		t.Fatalf("accepted graph's canonical encoding does not re-parse: %v", err)
	}
}

func FuzzParseTGFF(f *testing.F) {
	f.Add(sampleTGFF)
	f.Add("@TASK_GRAPH 0 {\n\tTASK a TYPE 0\n\tTASK b TYPE 1\n\tARC x FROM a TO b TYPE 0\n}\n")
	f.Add("@WCET 0 {\n\t0 100\n}\n")
	f.Add("# comment only\n")
	f.Fuzz(func(t *testing.T, doc string) {
		g, err := ParseBytes(FormatTGFF, []byte(doc))
		if err == nil {
			checkParsed(t, g)
		}
	})
}

func FuzzParseDOT(f *testing.F) {
	f.Add("strict digraph \"pipe line\" {\n\ta [cycles=1000, regbits=512];\n\ta -> b -> c [cycles=\"77\"];\n\tb -> d [label=\"42\"];\n\tc -> d;\n}\n")
	f.Add("digraph g { a -> b; }")
	f.Add("digraph g { a -> b [cycles=3]; b -> c; }")
	f.Add("digraph g  a -> b; }")
	f.Fuzz(func(t *testing.T, doc string) {
		g, err := ParseBytes(FormatDOT, []byte(doc))
		if err == nil {
			checkParsed(t, g)
		}
	})
}

func FuzzParseJSON(f *testing.F) {
	mpeg2, err := taskgraph.MPEG2().MarshalJSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(mpeg2))
	fig8, err := taskgraph.Fig8().MarshalJSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(fig8))
	f.Add(`{"name":"x","tasks":[]}`)
	f.Add(`{}`)
	f.Fuzz(func(t *testing.T, doc string) {
		g, err := ParseBytes(FormatJSON, []byte(doc))
		if err == nil {
			checkParsed(t, g)
		}
	})
}

// FuzzDetect: format sniffing must never panic and must hand every sniffed
// document to a parser that upholds the same contract.
func FuzzDetect(f *testing.F) {
	f.Add(sampleTGFF)
	f.Add("digraph g { a -> b; }")
	f.Add(`{"name":"x"}`)
	f.Add("")
	f.Fuzz(func(t *testing.T, doc string) {
		format, err := Detect([]byte(doc))
		if err != nil {
			return
		}
		g, err := ParseBytes(format, []byte(doc))
		if err == nil {
			checkParsed(t, g)
		}
	})
}
