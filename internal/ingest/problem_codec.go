package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"

	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
)

// DecodeProblem reconstructs a Problem from its canonical encoding (the
// bytes CanonicalEncoding produced). It is the wire format the distributed
// shard protocol ships: a coordinator sends the canonical bytes, a worker
// decodes them and is guaranteed — by the round-trip check below — to be
// solving the exact problem the coordinator hashed, with the same Key.
//
// The decode inverts the one lossy step of normalization it must: canonical
// SER 0 means "no soft errors", which the Options convention spells as any
// negative value, so it is restored as -1 (normalize maps it straight back
// to 0). Everything else in a canonical encoding is already in normalized
// form and re-normalizes to itself.
func DecodeProblem(enc []byte) (*Problem, error) {
	var cp canonicalProblem
	if err := json.Unmarshal(enc, &cp); err != nil {
		return nil, fmt.Errorf("ingest: decoding canonical problem: %w", err)
	}
	if cp.V != problemKeyVersionIdeal && cp.V != problemKeyVersionInterconnect {
		return nil, fmt.Errorf("ingest: canonical problem version %d, want %d or %d",
			cp.V, problemKeyVersionIdeal, problemKeyVersionInterconnect)
	}
	g, err := taskgraph.FromJSON(cp.Graph)
	if err != nil {
		return nil, fmt.Errorf("ingest: decoding canonical problem: %w", err)
	}
	plat, err := decodeCanonicalPlatform(cp.Platform)
	if err != nil {
		return nil, fmt.Errorf("ingest: decoding canonical platform: %w", err)
	}
	p := &Problem{Graph: g, Platform: plat, Options: cp.Options}
	if p.Options.SER == 0 {
		// Canonical 0 is the normalized "true zero rate"; the Options
		// convention for that is any negative value (0 would mean "use the
		// paper default" and silently change the problem).
		p.Options.SER = -1
	}
	for i, sp := range cp.SweepPlatforms {
		dp, err := decodeCanonicalPlatform(sp)
		if err != nil {
			return nil, fmt.Errorf("ingest: decoding canonical sweep platform %d: %w", i, err)
		}
		p.SweepPlatforms = append(p.SweepPlatforms, dp)
	}
	// Round-trip assertion: the decoded problem must re-encode to the exact
	// input bytes, or its Key would silently diverge from the coordinator's.
	re, err := p.CanonicalEncoding()
	if err != nil {
		return nil, fmt.Errorf("ingest: re-encoding decoded problem: %w", err)
	}
	if !bytes.Equal(re, enc) {
		return nil, fmt.Errorf("ingest: canonical problem round-trip mismatch")
	}
	return p, nil
}

// decodeCanonicalPlatform rebuilds an arch.Platform from the canonical wire
// form. Type names are synthetic (they never participate in identity); the
// per-class DVS tables and per-core class assignment carry the physics.
func decodeCanonicalPlatform(cp canonicalPlatform) (*arch.Platform, error) {
	types := make([]arch.ProcType, len(cp.Types))
	for i, levels := range cp.Types {
		t := arch.ProcType{Name: fmt.Sprintf("t%d", i)}
		for _, l := range levels {
			t.Levels = append(t.Levels, arch.Level{S: l.S, FreqMHz: l.FreqMHz, Vdd: l.Vdd})
		}
		types[i] = t
	}
	opts := []arch.Option{arch.WithCL(cp.CL), arch.WithBaselineBits(cp.BaselineBits)}
	if ic := cp.Interconnect; ic != nil {
		opts = append(opts, arch.WithInterconnect(arch.Interconnect{
			Topology:      arch.Topology(ic.Topology),
			BandwidthBps:  ic.BandwidthBps,
			HopLatencySec: ic.HopLatencySec,
			BitsPerCycle:  ic.BitsPerCycle,
			MeshWidth:     ic.MeshWidth,
		}))
	}
	return arch.NewHeterogeneousPlatform(types, cp.CoreTypes, opts...)
}
