package ingest

import (
	"testing"

	"seadopt/internal/taskgraph"
)

// TestDOTReingestsOwnExport parses the DOT rendering taskgraph produces for
// the MPEG-2 decoder: names, computation costs and edge costs must survive;
// register footprints are defaulted (DOT carries no inventory).
func TestDOTReingestsOwnExport(t *testing.T) {
	want := taskgraph.MPEG2()
	g, err := ParseBytes(FormatDOT, []byte(want.DOT()))
	if err != nil {
		t.Fatalf("ParseBytes(dot) on own export: %v", err)
	}
	if g.N() != want.N() {
		t.Fatalf("got %d tasks, want %d", g.N(), want.N())
	}
	for i := 0; i < g.N(); i++ {
		got, exp := g.Task(taskgraph.TaskID(i)), want.Task(taskgraph.TaskID(i))
		if got.Name != exp.Name {
			t.Errorf("task %d name %q, want %q", i, got.Name, exp.Name)
		}
		if got.Cycles != exp.Cycles {
			t.Errorf("task %s: %d cycles, want %d", got.Name, got.Cycles, exp.Cycles)
		}
		if bits := g.Inventory().SetBits(got.Registers); bits != DefaultRegisterBits {
			t.Errorf("task %s: %d register bits, want defaulted %d", got.Name, bits, DefaultRegisterBits)
		}
	}
	if len(g.Edges()) != len(want.Edges()) {
		t.Fatalf("got %d edges, want %d", len(g.Edges()), len(want.Edges()))
	}
	for _, e := range want.Edges() {
		c, ok := g.EdgeCost(e.From, e.To)
		if !ok || c != e.Cycles {
			t.Errorf("edge %d->%d cost %d,%v; want %d", e.From, e.To, c, ok, e.Cycles)
		}
	}
}

func TestDOTAttributesAndChains(t *testing.T) {
	const doc = `// hand-authored workload
strict digraph "pipe line" {
	rankdir=LR;
	node [shape=box];
	a [cycles=1000, regbits=512];
	b [label="Decode\n2000 cyc"];
	a -> b -> c [cycles="77"];
	b -> d [label="42"];
	c -> d;
}
`
	g, err := ParseBytes(FormatDOT, []byte(doc))
	if err != nil {
		t.Fatalf("ParseBytes(dot): %v", err)
	}
	if g.Name() != "pipe line" {
		t.Errorf("name %q, want \"pipe line\"", g.Name())
	}
	if g.N() != 4 {
		t.Fatalf("got %d tasks, want 4", g.N())
	}
	byName := map[string]taskgraph.Task{}
	for _, task := range g.Tasks() {
		byName[task.Name] = task
	}
	if byName["a"].Cycles != 1000 {
		t.Errorf("a: %d cycles, want 1000", byName["a"].Cycles)
	}
	if got := g.Inventory().SetBits(byName["a"].Registers); got != 512 {
		t.Errorf("a: %d register bits, want 512", got)
	}
	if byName["Decode"].Cycles != 2000 {
		t.Errorf("label-costed node: %d cycles, want 2000", byName["Decode"].Cycles)
	}
	if byName["c"].Cycles != DefaultComputeCycles {
		t.Errorf("defaulted node: %d cycles, want %d", byName["c"].Cycles, DefaultComputeCycles)
	}
	// Chain edges share the chain's attribute list.
	if c, _ := g.EdgeCost(byName["a"].ID, byName["Decode"].ID); c != 77 {
		t.Errorf("a->b cost %d, want 77", c)
	}
	if c, _ := g.EdgeCost(byName["Decode"].ID, byName["c"].ID); c != 77 {
		t.Errorf("b->c cost %d, want 77", c)
	}
	if c, _ := g.EdgeCost(byName["Decode"].ID, byName["d"].ID); c != 42 {
		t.Errorf("b->d label cost %d, want 42", c)
	}
	if c, _ := g.EdgeCost(byName["c"].ID, byName["d"].ID); c != 0 {
		t.Errorf("bare edge cost %d, want 0", c)
	}
}

// TestDOTRandomWorkloadRoundTrip exercises the path examples/serve uses:
// generate a §V random graph, render DOT, re-ingest.
func TestDOTRandomWorkloadRoundTrip(t *testing.T) {
	want := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(30), 11)
	g, err := ParseBytes(FormatDOT, []byte(want.DOT()))
	if err != nil {
		t.Fatalf("re-ingesting random DOT: %v", err)
	}
	if g.N() != want.N() || len(g.Edges()) != len(want.Edges()) {
		t.Fatalf("shape %d/%d, want %d/%d", g.N(), len(g.Edges()), want.N(), len(want.Edges()))
	}
	if g.CriticalPathCycles() != want.CriticalPathCycles() {
		t.Fatalf("critical path %d, want %d", g.CriticalPathCycles(), want.CriticalPathCycles())
	}
}

func TestDOTMalformed(t *testing.T) {
	cases := map[string]string{
		"not dot":          `{"name":"g"}`,
		"missing brace":    `digraph g  a -> b; }`,
		"unterminated":     `digraph g { a -> b;`,
		"dangling arrow":   `digraph g { a -> ; }`,
		"bad cycles":       `digraph g { a [cycles=lots]; a -> b; }`,
		"bad regbits":      `digraph g { a [regbits=-4]; a -> b; }`,
		"unclosed string":  `digraph g { a [label="oops]; }`,
		"unclosed comment": `digraph g { /* a -> b; }`,
		"trailing":         `digraph g { a -> b; } extra`,
		"empty":            `digraph g { }`,
	}
	for name, doc := range cases {
		if _, err := ParseBytes(FormatDOT, []byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
