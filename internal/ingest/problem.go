package ingest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"seadopt/internal/arch"
	"seadopt/internal/faults"
	"seadopt/internal/mapping"
	"seadopt/internal/pareto"
	"seadopt/internal/taskgraph"
)

// The optimization modes a problem can request.
const (
	// ModeScalar is the classic single-design optimization: the
	// deadline-meeting design with minimum power, tie-broken by Γ.
	ModeScalar = "scalar"
	// ModePareto returns the ordered Pareto frontier of deadline-feasible
	// designs over the problem's objectives instead of one scalar optimum.
	ModePareto = "pareto"
	// ModeSweep evaluates a batch of problem variants — a deadline sweep,
	// optionally crossed with extra platforms and per-point objective sets
	// — over one shared reuse layer, returning per-point results.
	ModeSweep = "sweep"
)

// ParseMode resolves a user-facing mode name (CLI flag, job option); the
// empty string selects the scalar mode.
func ParseMode(name string) (string, error) {
	switch name {
	case "", ModeScalar, "single":
		return ModeScalar, nil
	case ModePareto, "frontier", "multi":
		return ModePareto, nil
	case ModeSweep, "batch":
		return ModeSweep, nil
	}
	return "", fmt.Errorf("ingest: unknown mode %q (want scalar, pareto or sweep)", name)
}

// Options are the result-affecting knobs of an optimization problem. They
// mirror the root OptimizeOptions minus the execution-only fields
// (Parallelism, Progress), which deliberately do not participate in problem
// identity: the engine's result is byte-identical at any parallelism, so two
// submissions differing only in execution settings are the same problem.
type Options struct {
	// SER follows the library convention: 0 selects the paper's default
	// rate, negative selects a true zero rate.
	SER float64 `json:"ser"`
	// DeadlineSec is the real-time constraint; 0 means unconstrained.
	DeadlineSec float64 `json:"deadline_sec"`
	// StreamIterations is the pipelined stream length (0/1 = plain DAG).
	StreamIterations int `json:"stream_iterations"`
	// SearchMoves bounds the per-scaling mapping search (0 = default).
	SearchMoves int `json:"search_moves"`
	// Seed makes runs reproducible.
	Seed int64 `json:"seed"`
	// Baseline selects a soft error-unaware mapper instead of the paper's:
	// "" (proposed), "reg", "makespan" or "regtime".
	Baseline string `json:"baseline"`
	// Strategy selects the exploration walk: "" (server default), "bnb",
	// "exhaustive" or "sampled". It participates in problem identity so
	// cached results never cross strategies — in particular an approximate
	// "sampled" result can never be served for an exact request.
	Strategy string `json:"strategy"`
	// SampleBudget bounds the "sampled" strategy's portfolio (0 = engine
	// default). Normalized away for the exact strategies, which ignore it.
	SampleBudget int `json:"sample_budget"`
	// Mode selects the optimization output: "" or "scalar" (the single
	// minimum-power design), or "pareto" (the ordered non-dominated
	// frontier). It participates in problem identity: a scalar design and a
	// frontier are different results and never share a cache entry.
	Mode string `json:"mode"`
	// Objectives is the pareto mode's comma-separated objective selection
	// ("power,makespan,gamma" subsets; "" = all three). Normalized to the
	// canonical rendering, and zeroed for the scalar mode, which ignores
	// it.
	Objectives string `json:"objectives"`
	// SweepDeadlines lists the sweep mode's deadline points, in submission
	// order (the order per-point results stream in — deliberately NOT
	// sorted or deduplicated by normalization). Required for mode=sweep,
	// forbidden otherwise. DeadlineSec is ignored (and normalized away) in
	// sweep mode. omitempty keeps pre-sweep canonical encodings
	// byte-identical, so problemKeyVersion needs no bump.
	SweepDeadlines []float64 `json:"sweep_deadlines,omitempty"`
	// SweepObjectiveSets crosses the deadline sweep with Pareto objective
	// selections (one frontier per deadline × set). Only valid with
	// SweepPointMode "pareto"; each entry follows the Objectives syntax and
	// normalizes to its canonical rendering. Empty with a pareto point mode
	// means one default (all-objectives) set per deadline.
	SweepObjectiveSets []string `json:"sweep_objective_sets,omitempty"`
	// SweepPointMode selects each sweep point's reduction: "" or "scalar"
	// (one minimum-power design per point) or "pareto" (one frontier per
	// point).
	SweepPointMode string `json:"sweep_point_mode,omitempty"`
}

// Validate rejects option values the engine cannot run.
func (o Options) Validate() error {
	switch o.Baseline {
	case "", "reg", "makespan", "regtime":
	default:
		return fmt.Errorf("ingest: unknown baseline %q (want \"\", reg, makespan or regtime)", o.Baseline)
	}
	if _, err := mapping.ParseStrategy(o.Strategy); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	mode, err := ParseMode(o.Mode)
	if err != nil {
		return err
	}
	if mode == ModePareto && o.Baseline != "" {
		return fmt.Errorf("ingest: pareto mode supports only the proposed mapper (baseline %q given)", o.Baseline)
	}
	if _, err := pareto.ParseObjectives(o.Objectives); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	if mode != ModePareto && o.Objectives != "" {
		return fmt.Errorf("ingest: objectives %q need mode=pareto", o.Objectives)
	}
	if mode == ModeSweep {
		if len(o.SweepDeadlines) == 0 {
			return fmt.Errorf("ingest: mode=sweep needs at least one sweep deadline")
		}
		if o.Baseline != "" {
			return fmt.Errorf("ingest: sweep mode supports only the proposed mapper (baseline %q given)", o.Baseline)
		}
		for _, d := range o.SweepDeadlines {
			if d < 0 {
				return fmt.Errorf("ingest: negative sweep deadline %v", d)
			}
		}
		pm, err := ParseMode(o.SweepPointMode)
		if err != nil || pm == ModeSweep {
			return fmt.Errorf("ingest: sweep point mode %q (want scalar or pareto)", o.SweepPointMode)
		}
		if pm != ModePareto && len(o.SweepObjectiveSets) > 0 {
			return fmt.Errorf("ingest: sweep objective sets need sweep_point_mode=pareto")
		}
		for _, set := range o.SweepObjectiveSets {
			if _, err := pareto.ParseObjectives(set); err != nil {
				return fmt.Errorf("ingest: sweep objective set: %w", err)
			}
		}
	} else if len(o.SweepDeadlines) > 0 || len(o.SweepObjectiveSets) > 0 || o.SweepPointMode != "" {
		return fmt.Errorf("ingest: sweep options need mode=sweep")
	}
	if o.SampleBudget < 0 {
		return fmt.Errorf("ingest: negative sample budget %d", o.SampleBudget)
	}
	if o.DeadlineSec < 0 {
		return fmt.Errorf("ingest: negative deadline %v", o.DeadlineSec)
	}
	if o.StreamIterations < 0 {
		return fmt.Errorf("ingest: negative stream iterations %d", o.StreamIterations)
	}
	if o.SearchMoves < 0 {
		return fmt.Errorf("ingest: negative search moves %d", o.SearchMoves)
	}
	return nil
}

// normalize resolves the sentinel encodings so that equivalent option sets
// hash identically: SER 0 and the explicit paper rate are the same problem,
// as are every negative "no soft errors" value, and StreamIterations 0 and
// 1. Strategy aliases collapse to their canonical names but distinct
// strategies hash apart — branch-and-bound provably returns the exhaustive
// design, yet cached results still never cross strategies, so a cached
// entry always records exactly which walk produced it (and an approximate
// sampled result, keyed further by its budget, can never be served for an
// exact request).
func (o Options) normalize() Options {
	switch {
	case o.SER == 0:
		o.SER = faults.DefaultSER
	case o.SER < 0:
		o.SER = 0
	}
	if o.StreamIterations < 1 {
		o.StreamIterations = 1
	}
	s, err := mapping.ParseStrategy(o.Strategy)
	if err != nil {
		// Validate rejects unknown strategies before hashing; keep the
		// raw string so a bug cannot alias distinct problems.
		o.Strategy = "invalid:" + o.Strategy
		return o
	}
	o.Strategy = string(s)
	if s != mapping.StrategySampled {
		o.SampleBudget = 0
	} else if o.SampleBudget == 0 {
		o.SampleBudget = mapping.DefaultSampleBudget
	}
	mode, err := ParseMode(o.Mode)
	if err != nil {
		o.Mode = "invalid:" + o.Mode
		return o
	}
	o.Mode = mode
	if mode == ModeSweep {
		// Per-point deadlines replace the scalar one; don't let a stray
		// DeadlineSec split keys of otherwise identical sweeps.
		o.DeadlineSec = 0
		pm, err := ParseMode(o.SweepPointMode)
		if err != nil || pm == ModeSweep {
			o.SweepPointMode = "invalid:" + o.SweepPointMode
			return o
		}
		o.SweepPointMode = pm
		if pm == ModePareto {
			sets := o.SweepObjectiveSets
			if len(sets) == 0 {
				sets = []string{""}
			}
			canon := make([]string, len(sets))
			for i, set := range sets {
				obj, err := pareto.ParseObjectives(set)
				if err != nil {
					canon[i] = "invalid:" + set
					continue
				}
				canon[i] = obj.String()
			}
			o.SweepObjectiveSets = canon
		} else {
			o.SweepObjectiveSets = nil
		}
	} else {
		o.SweepDeadlines = nil
		o.SweepObjectiveSets = nil
		o.SweepPointMode = ""
	}
	if mode == ModePareto {
		// Canonical objective rendering: "gamma, power" and "power,gamma"
		// are the same problem; the default and its explicit spelling too.
		obj, err := pareto.ParseObjectives(o.Objectives)
		if err != nil {
			o.Objectives = "invalid:" + o.Objectives
			return o
		}
		o.Objectives = obj.String()
	} else {
		// The scalar mode ignores objectives; don't let them split keys.
		o.Objectives = ""
	}
	return o
}

// Problem is one fully-specified optimization job: what to optimize (graph),
// where it runs (platform) and how (options).
type Problem struct {
	Graph    *taskgraph.Graph
	Platform *arch.Platform
	Options  Options
	// SweepPlatforms crosses a sweep's deadline points with extra
	// platforms: each sweep point is evaluated on Platform and on every
	// platform listed here, in order. Only valid with mode=sweep.
	SweepPlatforms []*arch.Platform
}

// The problem-key version is bumped whenever the canonical encoding or the
// engine's result semantics change, invalidating previously cached keys.
// v2: exploration strategy + sample budget joined the canonical options.
// v3: optimization mode + Pareto objectives joined the canonical options.
// v4: heterogeneous platforms — the canonical platform became a per-core
// type assignment over class-deduplicated DVS tables (a homogeneous spec
// hashes differently than under v3 but provably produces identical designs).
// v5: contended interconnects — the canonical platform gained an optional
// fabric block. A problem without an interconnect on any platform still
// encodes (and hashes) as v4, byte-identical to the pre-fabric tree, so no
// ideal-fabric cache entry is invalidated; any interconnect anywhere
// selects v5.
const (
	problemKeyVersionIdeal        = 4
	problemKeyVersionInterconnect = 5
)

// keyVersion selects the wire version for a problem: the pre-fabric v4
// whenever every platform uses the ideal fabric, v5 otherwise.
func (p *Problem) keyVersion() int {
	if p.Platform.Interconnect() != nil {
		return problemKeyVersionInterconnect
	}
	for _, sp := range p.SweepPlatforms {
		if sp != nil && sp.Interconnect() != nil {
			return problemKeyVersionInterconnect
		}
	}
	return problemKeyVersionIdeal
}

// canonicalProblem is the stable wire form the ProblemKey hashes. Field
// order is fixed; every field is value-typed or deterministically ordered
// (the graph encoding orders registers by inventory insertion, tasks by ID
// and edges by source task).
type canonicalProblem struct {
	V        int               `json:"v"`
	Graph    json.RawMessage   `json:"graph"`
	Platform canonicalPlatform `json:"platform"`
	Options  Options           `json:"options"`
	// SweepPlatforms participates only for sweep problems; omitempty keeps
	// every pre-sweep encoding byte-identical under problemKeyVersion 4.
	SweepPlatforms []canonicalPlatform `json:"sweep_platforms,omitempty"`
}

// canonicalPlatform encodes the physical platform only: per-core indices
// into a list of distinct DVS tables. Processor-type *names* and duplicate
// type declarations are canonicalized away via arch's symmetry classes
// (identical tables collapse to one class, ids in first-occurrence order
// over the core list), so two specs describing the same hardware hash
// identically however they spell it.
type canonicalPlatform struct {
	CoreTypes    []int              `json:"core_types"`
	CL           float64            `json:"cl"`
	BaselineBits int64              `json:"baseline_bits"`
	Types        [][]canonicalLevel `json:"types"`
	// Interconnect is the normalized fabric; omitempty keeps every
	// ideal-fabric platform encoding byte-identical to v4.
	Interconnect *canonicalInterconnect `json:"interconnect,omitempty"`
}

// canonicalInterconnect carries the platform's normalized fabric parameters
// (defaults resolved: BitsPerCycle filled, mesh width explicit), so two
// specs describing the same fabric hash identically however they spell it.
type canonicalInterconnect struct {
	Topology      string  `json:"topology"`
	BandwidthBps  float64 `json:"bandwidth_bps"`
	HopLatencySec float64 `json:"hop_latency_sec"`
	BitsPerCycle  float64 `json:"bits_per_cycle"`
	MeshWidth     int     `json:"mesh_width,omitempty"`
}

type canonicalLevel struct {
	S       int     `json:"s"`
	FreqMHz float64 `json:"freq_mhz"`
	Vdd     float64 `json:"vdd"`
}

// canonicalizePlatform renders one platform in the canonical wire form:
// per-core symmetry-class ids plus one DVS table per class, in class-id
// (first-occurrence) order.
func canonicalizePlatform(p *arch.Platform) canonicalPlatform {
	cp := canonicalPlatform{
		CoreTypes:    p.SymmetryClasses(),
		CL:           p.CL(),
		BaselineBits: p.BaselineBits(),
	}
	seen := make(map[int]bool)
	for core, cls := range cp.CoreTypes {
		if seen[cls] {
			continue
		}
		seen[cls] = true
		var levels []canonicalLevel
		for _, l := range p.Levels(core) {
			levels = append(levels, canonicalLevel{S: l.S, FreqMHz: l.FreqMHz, Vdd: l.Vdd})
		}
		cp.Types = append(cp.Types, levels)
	}
	if ic := p.Interconnect(); ic != nil {
		cp.Interconnect = &canonicalInterconnect{
			Topology:      string(ic.Topology),
			BandwidthBps:  ic.BandwidthBps,
			HopLatencySec: ic.HopLatencySec,
			BitsPerCycle:  ic.BitsPerCycle,
			MeshWidth:     ic.MeshWidth,
		}
	}
	return cp
}

// CanonicalEncoding returns the stable byte encoding of the problem that
// Key hashes. Two problems with equal encodings produce identical designs.
func (p *Problem) CanonicalEncoding() ([]byte, error) {
	if p.Graph == nil || p.Platform == nil {
		return nil, fmt.Errorf("ingest: problem needs both a graph and a platform")
	}
	if err := p.Options.Validate(); err != nil {
		return nil, err
	}
	mode, _ := ParseMode(p.Options.Mode)
	if len(p.SweepPlatforms) > 0 && mode != ModeSweep {
		return nil, fmt.Errorf("ingest: sweep platforms need mode=sweep")
	}
	gj, err := p.Graph.MarshalJSON()
	if err != nil {
		return nil, fmt.Errorf("ingest: encoding graph for problem key: %w", err)
	}
	cp := canonicalProblem{
		V:        p.keyVersion(),
		Graph:    gj,
		Platform: canonicalizePlatform(p.Platform),
		Options:  p.Options.normalize(),
	}
	for _, sp := range p.SweepPlatforms {
		if sp == nil {
			return nil, fmt.Errorf("ingest: nil sweep platform")
		}
		cp.SweepPlatforms = append(cp.SweepPlatforms, canonicalizePlatform(sp))
	}
	return json.Marshal(cp)
}

// Key returns the content-addressed identity of the problem: a SHA-256 over
// the canonical encoding of (graph, platform, options), in the form
// "sha256:<hex>". Identical problems — regardless of the format they were
// ingested from or the execution settings they run under — share a key,
// which is what the service's result cache and single-flight coalescing
// key on.
func (p *Problem) Key() (string, error) {
	enc, err := p.CanonicalEncoding()
	if err != nil {
		return "", err
	}
	return EncodingKey(enc), nil
}

// EncodingKey returns the problem key of an already-computed canonical
// encoding, for callers (the service's durable store, the distributed shard
// protocol) that need both the bytes and their key without hashing twice.
func EncodingKey(enc []byte) string {
	sum := sha256.Sum256(enc)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// canonicalFingerprint is the workload-only slice of the canonical problem:
// graph and platform, no options. Its own version tag moves independently of
// problemKeyVersion, since it only gates warm-start and probe reuse, never
// result-cache identity.
type canonicalFingerprint struct {
	V        int               `json:"v"`
	Graph    json.RawMessage   `json:"graph"`
	Platform canonicalPlatform `json:"platform"`
}

const fingerprintVersion = 1

// Fingerprint is the content identity of the problem's workload alone —
// graph and platform, no options — in the form "fp-sha256:<hex>". Problems
// sharing a fingerprint describe the same hardware running the same
// application under different optimization options; the service's
// warm-start registry keys on it, so a prior result can seed a
// fingerprint-matching submission whose deadline or objectives differ.
// Together with OptionKey it splits Key: two problems are the same problem
// iff fingerprint AND option key (and sweep platform list) match.
func (p *Problem) Fingerprint() (string, error) {
	if p.Graph == nil || p.Platform == nil {
		return "", fmt.Errorf("ingest: problem needs both a graph and a platform")
	}
	gj, err := p.Graph.MarshalJSON()
	if err != nil {
		return "", fmt.Errorf("ingest: encoding graph for fingerprint: %w", err)
	}
	enc, err := json.Marshal(canonicalFingerprint{
		V:        fingerprintVersion,
		Graph:    gj,
		Platform: canonicalizePlatform(p.Platform),
	})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(enc)
	return "fp-sha256:" + hex.EncodeToString(sum[:]), nil
}

// OptionKey is the content identity of the normalized options alone, in the
// form "opt-sha256:<hex>". See Fingerprint.
func (o Options) OptionKey() (string, error) {
	if err := o.Validate(); err != nil {
		return "", err
	}
	enc, err := json.Marshal(o.normalize())
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(enc)
	return "opt-sha256:" + hex.EncodeToString(sum[:]), nil
}

// ProbeKey identifies the problem's probe-trajectory universe: the
// fingerprint plus the two options the probe depends on — Seed and the
// normalized stream-iteration count. The probe's climb is independent of
// deadline, SER, strategy, mode and search budgets (see mapping.ProbeCache),
// so every submission sharing a ProbeKey may share one reuse bundle, however
// much those options differ. Form: "probe-sha256:<hex>".
func (p *Problem) ProbeKey() (string, error) {
	fp, err := p.Fingerprint()
	if err != nil {
		return "", err
	}
	iters := p.Options.StreamIterations
	if iters < 1 {
		iters = 1
	}
	enc, err := json.Marshal(struct {
		FP    string `json:"fp"`
		Seed  int64  `json:"seed"`
		Iters int    `json:"iters"`
	}{fp, p.Options.Seed, iters})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(enc)
	return "probe-sha256:" + hex.EncodeToString(sum[:]), nil
}
