package ingest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"seadopt/internal/arch"
	"seadopt/internal/faults"
	"seadopt/internal/mapping"
	"seadopt/internal/pareto"
	"seadopt/internal/taskgraph"
)

// The optimization modes a problem can request.
const (
	// ModeScalar is the classic single-design optimization: the
	// deadline-meeting design with minimum power, tie-broken by Γ.
	ModeScalar = "scalar"
	// ModePareto returns the ordered Pareto frontier of deadline-feasible
	// designs over the problem's objectives instead of one scalar optimum.
	ModePareto = "pareto"
)

// ParseMode resolves a user-facing mode name (CLI flag, job option); the
// empty string selects the scalar mode.
func ParseMode(name string) (string, error) {
	switch name {
	case "", ModeScalar, "single":
		return ModeScalar, nil
	case ModePareto, "frontier", "multi":
		return ModePareto, nil
	}
	return "", fmt.Errorf("ingest: unknown mode %q (want scalar or pareto)", name)
}

// Options are the result-affecting knobs of an optimization problem. They
// mirror the root OptimizeOptions minus the execution-only fields
// (Parallelism, Progress), which deliberately do not participate in problem
// identity: the engine's result is byte-identical at any parallelism, so two
// submissions differing only in execution settings are the same problem.
type Options struct {
	// SER follows the library convention: 0 selects the paper's default
	// rate, negative selects a true zero rate.
	SER float64 `json:"ser"`
	// DeadlineSec is the real-time constraint; 0 means unconstrained.
	DeadlineSec float64 `json:"deadline_sec"`
	// StreamIterations is the pipelined stream length (0/1 = plain DAG).
	StreamIterations int `json:"stream_iterations"`
	// SearchMoves bounds the per-scaling mapping search (0 = default).
	SearchMoves int `json:"search_moves"`
	// Seed makes runs reproducible.
	Seed int64 `json:"seed"`
	// Baseline selects a soft error-unaware mapper instead of the paper's:
	// "" (proposed), "reg", "makespan" or "regtime".
	Baseline string `json:"baseline"`
	// Strategy selects the exploration walk: "" (server default), "bnb",
	// "exhaustive" or "sampled". It participates in problem identity so
	// cached results never cross strategies — in particular an approximate
	// "sampled" result can never be served for an exact request.
	Strategy string `json:"strategy"`
	// SampleBudget bounds the "sampled" strategy's portfolio (0 = engine
	// default). Normalized away for the exact strategies, which ignore it.
	SampleBudget int `json:"sample_budget"`
	// Mode selects the optimization output: "" or "scalar" (the single
	// minimum-power design), or "pareto" (the ordered non-dominated
	// frontier). It participates in problem identity: a scalar design and a
	// frontier are different results and never share a cache entry.
	Mode string `json:"mode"`
	// Objectives is the pareto mode's comma-separated objective selection
	// ("power,makespan,gamma" subsets; "" = all three). Normalized to the
	// canonical rendering, and zeroed for the scalar mode, which ignores
	// it.
	Objectives string `json:"objectives"`
}

// Validate rejects option values the engine cannot run.
func (o Options) Validate() error {
	switch o.Baseline {
	case "", "reg", "makespan", "regtime":
	default:
		return fmt.Errorf("ingest: unknown baseline %q (want \"\", reg, makespan or regtime)", o.Baseline)
	}
	if _, err := mapping.ParseStrategy(o.Strategy); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	mode, err := ParseMode(o.Mode)
	if err != nil {
		return err
	}
	if mode == ModePareto && o.Baseline != "" {
		return fmt.Errorf("ingest: pareto mode supports only the proposed mapper (baseline %q given)", o.Baseline)
	}
	if _, err := pareto.ParseObjectives(o.Objectives); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	if mode != ModePareto && o.Objectives != "" {
		return fmt.Errorf("ingest: objectives %q need mode=pareto", o.Objectives)
	}
	if o.SampleBudget < 0 {
		return fmt.Errorf("ingest: negative sample budget %d", o.SampleBudget)
	}
	if o.DeadlineSec < 0 {
		return fmt.Errorf("ingest: negative deadline %v", o.DeadlineSec)
	}
	if o.StreamIterations < 0 {
		return fmt.Errorf("ingest: negative stream iterations %d", o.StreamIterations)
	}
	if o.SearchMoves < 0 {
		return fmt.Errorf("ingest: negative search moves %d", o.SearchMoves)
	}
	return nil
}

// normalize resolves the sentinel encodings so that equivalent option sets
// hash identically: SER 0 and the explicit paper rate are the same problem,
// as are every negative "no soft errors" value, and StreamIterations 0 and
// 1. Strategy aliases collapse to their canonical names but distinct
// strategies hash apart — branch-and-bound provably returns the exhaustive
// design, yet cached results still never cross strategies, so a cached
// entry always records exactly which walk produced it (and an approximate
// sampled result, keyed further by its budget, can never be served for an
// exact request).
func (o Options) normalize() Options {
	switch {
	case o.SER == 0:
		o.SER = faults.DefaultSER
	case o.SER < 0:
		o.SER = 0
	}
	if o.StreamIterations < 1 {
		o.StreamIterations = 1
	}
	s, err := mapping.ParseStrategy(o.Strategy)
	if err != nil {
		// Validate rejects unknown strategies before hashing; keep the
		// raw string so a bug cannot alias distinct problems.
		o.Strategy = "invalid:" + o.Strategy
		return o
	}
	o.Strategy = string(s)
	if s != mapping.StrategySampled {
		o.SampleBudget = 0
	} else if o.SampleBudget == 0 {
		o.SampleBudget = mapping.DefaultSampleBudget
	}
	mode, err := ParseMode(o.Mode)
	if err != nil {
		o.Mode = "invalid:" + o.Mode
		return o
	}
	o.Mode = mode
	if mode == ModePareto {
		// Canonical objective rendering: "gamma, power" and "power,gamma"
		// are the same problem; the default and its explicit spelling too.
		obj, err := pareto.ParseObjectives(o.Objectives)
		if err != nil {
			o.Objectives = "invalid:" + o.Objectives
			return o
		}
		o.Objectives = obj.String()
	} else {
		// The scalar mode ignores objectives; don't let them split keys.
		o.Objectives = ""
	}
	return o
}

// Problem is one fully-specified optimization job: what to optimize (graph),
// where it runs (platform) and how (options).
type Problem struct {
	Graph    *taskgraph.Graph
	Platform *arch.Platform
	Options  Options
}

// problemKeyVersion is bumped whenever the canonical encoding or the
// engine's result semantics change, invalidating previously cached keys.
// v2: exploration strategy + sample budget joined the canonical options.
// v3: optimization mode + Pareto objectives joined the canonical options.
// v4: heterogeneous platforms — the canonical platform became a per-core
// type assignment over class-deduplicated DVS tables (a homogeneous spec
// hashes differently than under v3 but provably produces identical designs).
const problemKeyVersion = 4

// canonicalProblem is the stable wire form the ProblemKey hashes. Field
// order is fixed; every field is value-typed or deterministically ordered
// (the graph encoding orders registers by inventory insertion, tasks by ID
// and edges by source task).
type canonicalProblem struct {
	V        int               `json:"v"`
	Graph    json.RawMessage   `json:"graph"`
	Platform canonicalPlatform `json:"platform"`
	Options  Options           `json:"options"`
}

// canonicalPlatform encodes the physical platform only: per-core indices
// into a list of distinct DVS tables. Processor-type *names* and duplicate
// type declarations are canonicalized away via arch's symmetry classes
// (identical tables collapse to one class, ids in first-occurrence order
// over the core list), so two specs describing the same hardware hash
// identically however they spell it.
type canonicalPlatform struct {
	CoreTypes    []int              `json:"core_types"`
	CL           float64            `json:"cl"`
	BaselineBits int64              `json:"baseline_bits"`
	Types        [][]canonicalLevel `json:"types"`
}

type canonicalLevel struct {
	S       int     `json:"s"`
	FreqMHz float64 `json:"freq_mhz"`
	Vdd     float64 `json:"vdd"`
}

// CanonicalEncoding returns the stable byte encoding of the problem that
// Key hashes. Two problems with equal encodings produce identical designs.
func (p *Problem) CanonicalEncoding() ([]byte, error) {
	if p.Graph == nil || p.Platform == nil {
		return nil, fmt.Errorf("ingest: problem needs both a graph and a platform")
	}
	if err := p.Options.Validate(); err != nil {
		return nil, err
	}
	gj, err := p.Graph.MarshalJSON()
	if err != nil {
		return nil, fmt.Errorf("ingest: encoding graph for problem key: %w", err)
	}
	cp := canonicalProblem{
		V:     problemKeyVersion,
		Graph: gj,
		Platform: canonicalPlatform{
			CoreTypes:    p.Platform.SymmetryClasses(),
			CL:           p.Platform.CL(),
			BaselineBits: p.Platform.BaselineBits(),
		},
		Options: p.Options.normalize(),
	}
	// One table per symmetry class, in class-id (first-occurrence) order.
	seen := make(map[int]bool)
	for core, cls := range cp.Platform.CoreTypes {
		if seen[cls] {
			continue
		}
		seen[cls] = true
		var levels []canonicalLevel
		for _, l := range p.Platform.Levels(core) {
			levels = append(levels, canonicalLevel{S: l.S, FreqMHz: l.FreqMHz, Vdd: l.Vdd})
		}
		cp.Platform.Types = append(cp.Platform.Types, levels)
	}
	return json.Marshal(cp)
}

// Key returns the content-addressed identity of the problem: a SHA-256 over
// the canonical encoding of (graph, platform, options), in the form
// "sha256:<hex>". Identical problems — regardless of the format they were
// ingested from or the execution settings they run under — share a key,
// which is what the service's result cache and single-flight coalescing
// key on.
func (p *Problem) Key() (string, error) {
	enc, err := p.CanonicalEncoding()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(enc)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}
