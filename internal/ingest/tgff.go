package ingest

import (
	"fmt"
	"strconv"
	"strings"

	"seadopt/internal/registers"
	"seadopt/internal/taskgraph"
)

// tgffTask and tgffArc are the raw statements of a @TASK_GRAPH block.
type tgffTask struct {
	name string
	typ  int
	line int
}

type tgffArc struct {
	name     string
	from, to string
	typ      int
	line     int
}

// parseTGFF parses the task-graph subset of the TGFF generator's output
// format: exactly one @TASK_GRAPH block (TASK/ARC statements; PERIOD and
// other scalar attributes are ignored — deadlines arrive with the job, not
// the graph), plus the optional @WCET/@COMMUN/@REGISTERS two-column
// attribute tables mapping a TYPE to cycles / cycles / bits. Unknown
// sections (@PE, @HYPERPERIOD, ...) are skipped whole.
func parseTGFF(data []byte) (*taskgraph.Graph, error) {
	var (
		tasks      []tgffTask
		arcs       []tgffArc
		graphName  string
		graphCount int

		wcet, commun, regbits map[int]int64
	)

	section := ""   // active @SECTION name, "" outside
	inBody := false // seen the section's '{'
	tables := map[string]*map[int]int64{
		"WCET":          &wcet,
		"COMPUTATION":   &wcet,
		"COMMUN":        &commun,
		"COMMUNICATION": &commun,
		"REGISTERS":     &regbits,
		"REGS":          &regbits,
	}
	var activeTable *map[int]int64

	for ln, raw := range strings.Split(string(data), "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := ln + 1

		if strings.HasPrefix(line, "@") {
			if section != "" {
				return nil, fmt.Errorf("ingest: tgff line %d: section @%s not closed before new section", lineNo, section)
			}
			fields := strings.Fields(strings.TrimSuffix(line, "{"))
			section = strings.TrimPrefix(fields[0], "@")
			inBody = strings.HasSuffix(line, "{")
			activeTable = nil
			if t, ok := tables[section]; ok {
				if *t == nil {
					*t = make(map[int]int64)
				}
				activeTable = t
			}
			if section == "TASK_GRAPH" {
				graphCount++
				if graphCount > 1 {
					return nil, fmt.Errorf("ingest: tgff line %d: file contains more than one @TASK_GRAPH block; submit one graph per job", lineNo)
				}
				graphName = "tgff"
				if len(fields) > 1 {
					graphName = "tgff-" + fields[1]
				}
			}
			continue
		}
		if line == "{" {
			if section == "" {
				return nil, fmt.Errorf("ingest: tgff line %d: '{' outside any @section", lineNo)
			}
			inBody = true
			continue
		}
		if line == "}" {
			if section == "" {
				return nil, fmt.Errorf("ingest: tgff line %d: '}' outside any @section", lineNo)
			}
			section, inBody, activeTable = "", false, nil
			continue
		}
		if section == "" || !inBody {
			return nil, fmt.Errorf("ingest: tgff line %d: statement %q outside a section body", lineNo, line)
		}

		switch {
		case section == "TASK_GRAPH":
			fields := strings.Fields(line)
			switch fields[0] {
			case "TASK":
				// TASK <name> TYPE <n>
				name, typ, err := tgffNameType(fields[1:], "TASK")
				if err != nil {
					return nil, fmt.Errorf("ingest: tgff line %d: %w", lineNo, err)
				}
				tasks = append(tasks, tgffTask{name: name, typ: typ, line: lineNo})
			case "ARC":
				// ARC <name> FROM <task> TO <task> TYPE <n>
				arc, err := tgffArcStmt(fields[1:])
				if err != nil {
					return nil, fmt.Errorf("ingest: tgff line %d: %w", lineNo, err)
				}
				arc.line = lineNo
				arcs = append(arcs, arc)
			default:
				// PERIOD, HARD_DEADLINE, SOFT_DEADLINE, ... — scalar graph
				// attributes the optimizer takes from the job instead.
			}
		case activeTable != nil:
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("ingest: tgff line %d: @%s table row %q: want exactly 2 columns (TYPE VALUE)", lineNo, section, line)
			}
			typ, err := strconv.Atoi(fields[0])
			if err != nil || typ < 0 {
				return nil, fmt.Errorf("ingest: tgff line %d: @%s table row %q: bad TYPE %q", lineNo, section, line, fields[0])
			}
			val, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || val <= 0 {
				return nil, fmt.Errorf("ingest: tgff line %d: @%s table row %q: bad value %q (want a positive number)", lineNo, section, line, fields[1])
			}
			(*activeTable)[typ] = int64(val)
		default:
			// Row of an unknown section (@PE cost tables etc.) — skip.
		}
	}
	if section != "" {
		return nil, fmt.Errorf("ingest: tgff: section @%s is never closed", section)
	}
	if graphCount == 0 {
		return nil, fmt.Errorf("ingest: tgff: no @TASK_GRAPH block found")
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("ingest: tgff: @TASK_GRAPH declares no TASK statements")
	}

	// Resolve statements into a graph. One private register per task, sized
	// by the @REGISTERS table or the type-scaled default.
	inv := registers.NewInventory()
	byName := make(map[string]taskgraph.TaskID, len(tasks))
	for _, t := range tasks {
		if _, dup := byName[t.name]; dup {
			return nil, fmt.Errorf("ingest: tgff line %d: duplicate TASK name %q", t.line, t.name)
		}
		byName[t.name] = taskgraph.TaskID(len(byName))
	}
	b := taskgraph.NewBuilder(graphName, inv)
	for _, t := range tasks {
		bits, err := tgffLookup(regbits, t.typ, "REGISTERS", t.name)
		if err != nil {
			return nil, err
		}
		if bits == 0 {
			bits = 1024 * (1 + int64(t.typ)%5)
		}
		regID := "loc_" + t.name
		if err := inv.Add(regID, bits); err != nil {
			return nil, fmt.Errorf("ingest: tgff task %q: %w", t.name, err)
		}
		cycles, err := tgffLookup(wcet, t.typ, "WCET", t.name)
		if err != nil {
			return nil, err
		}
		if cycles == 0 {
			cycles = int64(t.typ+1) * DefaultComputeCycles
		}
		b.AddTask(t.name, cycles, regID)
	}
	seen := make(map[[2]string]string, len(arcs))
	for _, a := range arcs {
		from, ok := byName[a.from]
		if !ok {
			return nil, fmt.Errorf("ingest: tgff line %d: ARC %s references undefined task %q", a.line, a.name, a.from)
		}
		to, ok := byName[a.to]
		if !ok {
			return nil, fmt.Errorf("ingest: tgff line %d: ARC %s references undefined task %q", a.line, a.name, a.to)
		}
		key := [2]string{a.from, a.to}
		if prev, dup := seen[key]; dup {
			return nil, fmt.Errorf("ingest: tgff line %d: ARC %s duplicates ARC %s (%s -> %s)", a.line, a.name, prev, a.from, a.to)
		}
		seen[key] = a.name
		cycles, err := tgffLookup(commun, a.typ, "COMMUN", a.name)
		if err != nil {
			return nil, err
		}
		if cycles == 0 {
			cycles = int64(a.typ+1) * DefaultCommCycles
		}
		b.AddEdge(from, to, cycles)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("ingest: tgff: %w", err)
	}
	return g, nil
}

// tgffLookup resolves a TYPE against an optional attribute table: a missing
// table means "use the defaults" (returns 0), but a table that exists and
// lacks the type is a user error worth naming.
func tgffLookup(table map[int]int64, typ int, tableName, element string) (int64, error) {
	if table == nil {
		return 0, nil
	}
	v, ok := table[typ]
	if !ok {
		return 0, fmt.Errorf("ingest: tgff: @%s table has no entry for TYPE %d used by %q", tableName, typ, element)
	}
	return v, nil
}

// tgffNameType parses "<name> TYPE <n>".
func tgffNameType(fields []string, stmt string) (string, int, error) {
	if len(fields) != 3 || fields[1] != "TYPE" {
		return "", 0, fmt.Errorf("malformed %s statement (want %s <name> TYPE <n>)", stmt, stmt)
	}
	typ, err := strconv.Atoi(fields[2])
	if err != nil || typ < 0 {
		return "", 0, fmt.Errorf("%s %q has bad TYPE %q (want a non-negative integer)", stmt, fields[0], fields[2])
	}
	return fields[0], typ, nil
}

// tgffArcStmt parses "<name> FROM <task> TO <task> TYPE <n>".
func tgffArcStmt(fields []string) (tgffArc, error) {
	if len(fields) != 7 || fields[1] != "FROM" || fields[3] != "TO" || fields[5] != "TYPE" {
		return tgffArc{}, fmt.Errorf("malformed ARC statement (want ARC <name> FROM <task> TO <task> TYPE <n>)")
	}
	typ, err := strconv.Atoi(fields[6])
	if err != nil || typ < 0 {
		return tgffArc{}, fmt.Errorf("ARC %q has bad TYPE %q (want a non-negative integer)", fields[0], fields[6])
	}
	return tgffArc{name: fields[0], from: fields[2], to: fields[4], typ: typ}, nil
}
