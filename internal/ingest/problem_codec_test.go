package ingest

import (
	"bytes"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
)

// TestDecodeProblemRoundTrip pins the distributed wire contract: decoding a
// canonical encoding yields a problem with the same Key and the same bytes,
// across option corners (defaults, true-zero SER, pareto mode, sweeps,
// heterogeneous platforms).
func TestDecodeProblemRoundTrip(t *testing.T) {
	het, err := arch.NewHeterogeneousPlatform([]arch.ProcType{
		{Name: "big", Levels: arch.ARM7Levels3()},
		{Name: "little", Levels: arch.ARM7Levels2()},
	}, []int{0, 0, 1}, arch.WithCL(1.1e-9))
	if err != nil {
		t.Fatal(err)
	}
	sweep := testProblem(t)
	sweep.Options.Mode = ModeSweep
	sweep.Options.DeadlineSec = 0
	sweep.Options.SweepDeadlines = []float64{0.2, 0.3}
	sweep.Options.SweepPointMode = "pareto"
	sweep.Options.SweepObjectiveSets = []string{"power,gamma"}
	sweep.SweepPlatforms = []*arch.Platform{het}

	zeroSER := testProblem(t)
	zeroSER.Options.SER = -5 // any negative = no soft errors

	pareto := testProblem(t)
	pareto.Options.Mode = ModePareto
	pareto.Options.Objectives = "gamma,power"
	pareto.Options.Strategy = "exhaustive"

	hetProb := &Problem{Graph: taskgraph.Fig8(), Platform: het,
		Options: Options{DeadlineSec: taskgraph.Fig8Deadline, Seed: 7}}

	for _, tc := range []struct {
		name string
		p    *Problem
	}{
		{"defaults", testProblem(t)},
		{"zeroSER", zeroSER},
		{"pareto", pareto},
		{"heterogeneous", hetProb},
		{"sweep", sweep},
	} {
		t.Run(tc.name, func(t *testing.T) {
			enc, err := tc.p.CanonicalEncoding()
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeProblem(enc)
			if err != nil {
				t.Fatal(err)
			}
			re, err := got.CanonicalEncoding()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re, enc) {
				t.Fatalf("re-encode diverged:\n in: %s\nout: %s", enc, re)
			}
			wantKey, _ := tc.p.Key()
			gotKey, err := got.Key()
			if err != nil {
				t.Fatal(err)
			}
			if gotKey != wantKey {
				t.Fatalf("key diverged: %s vs %s", gotKey, wantKey)
			}
		})
	}
}

func TestDecodeProblemRejects(t *testing.T) {
	if _, err := DecodeProblem([]byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := DecodeProblem([]byte(`{"v":3}`)); err == nil {
		t.Fatal("stale version accepted")
	}
}
