package ingest

import (
	"strings"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
)

const nocSpec = `{
  "types": [{"name": "arm7", "freqs_mhz": [200, 100, 66.67]}],
  "cores": [{"type": "arm7", "count": 4}],
  "interconnect": {
    "topology": "mesh",
    "bandwidth_bits_per_sec": 4e9,
    "hop_latency_sec": 1e-4
  }
}`

func TestInterconnectSpecParse(t *testing.T) {
	p, err := ParsePlatformSpec([]byte(nocSpec))
	if err != nil {
		t.Fatal(err)
	}
	ic := p.Interconnect()
	if ic == nil {
		t.Fatal("spec with an interconnect block built an ideal-fabric platform")
	}
	if ic.Topology != arch.TopologyMesh || ic.BandwidthBps != 4e9 || ic.HopLatencySec != 1e-4 {
		t.Fatalf("fabric parameters lost in parsing: %+v", ic)
	}
	if ic.BitsPerCycle != arch.DefaultBitsPerCycle {
		t.Fatalf("BitsPerCycle %v, want default %v", ic.BitsPerCycle, arch.DefaultBitsPerCycle)
	}
	if ic.MeshWidth != 2 { // ceil(sqrt(4))
		t.Fatalf("4-core mesh width %d, want 2", ic.MeshWidth)
	}
}

func TestInterconnectSpecErrors(t *testing.T) {
	cases := []struct {
		name, spec, want string
	}{
		{"unknown topology",
			`{"types":[{"name":"a","freqs_mhz":[200]}],"cores":[{"type":"a","count":2}],
			  "interconnect":{"topology":"torus","bandwidth_bits_per_sec":1e9}}`,
			"topology"},
		{"missing bandwidth",
			`{"types":[{"name":"a","freqs_mhz":[200]}],"cores":[{"type":"a","count":2}],
			  "interconnect":{"topology":"bus"}}`,
			"bandwidth"},
		{"mesh width on a bus",
			`{"types":[{"name":"a","freqs_mhz":[200]}],"cores":[{"type":"a","count":2}],
			  "interconnect":{"topology":"bus","bandwidth_bits_per_sec":1e9,"mesh_width":2}}`,
			"mesh_width"},
		{"unknown field",
			`{"types":[{"name":"a","freqs_mhz":[200]}],"cores":[{"type":"a","count":2}],
			  "interconnect":{"topology":"bus","bandwidth_bits_per_sec":1e9,"latency":1}}`,
			"unknown field"},
	}
	for _, tc := range cases {
		if _, err := ParsePlatformSpec([]byte(tc.spec)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestProblemKeyV4Pinned pins the pre-interconnect canonical identity: an
// interconnect-free problem must keep encoding as version 4, byte-identical
// to the tree before the fabric existed, so no cached result or warm-start
// entry is orphaned by this change. The literals were computed on the
// pre-interconnect tree; if this test fails, cache compatibility is broken
// — do not "fix" it by re-pinning without bumping both versions.
func TestProblemKeyV4Pinned(t *testing.T) {
	const (
		pinnedKey = "sha256:ebb719c2ad99c6622fdc484a0e512fa5dae5971c62837a7c61bd2bf5e6fb0fbb"
		pinnedFP  = "fp-sha256:3b14744497dbee406a022f0444c991bb9ad37d7f031b3ddd46b65116b9dab3ce"
	)
	plat, err := ParsePlatformSpec([]byte(
		`{"types":[{"name":"arm7","freqs_mhz":[200,100,66.67]}],"cores":[{"type":"arm7","count":4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		Graph:    taskgraph.Fig8(),
		Platform: plat,
		Options:  Options{DeadlineSec: 0.0028, Seed: 7},
	}
	enc, err := p.CanonicalEncoding()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(enc), `"v":4`) {
		t.Errorf("ideal-fabric problem did not encode as v4: %s", enc[:60])
	}
	if strings.Contains(string(enc), "interconnect") {
		t.Error("ideal-fabric canonical encoding mentions an interconnect")
	}
	if k := EncodingKey(enc); k != pinnedKey {
		t.Errorf("problem key drifted:\n  got  %s\n  want %s", k, pinnedKey)
	}
	fp, err := p.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != pinnedFP {
		t.Errorf("fingerprint drifted:\n  got  %s\n  want %s", fp, pinnedFP)
	}
}

func TestInterconnectProblemKeys(t *testing.T) {
	mk := func(spec string) *Problem {
		t.Helper()
		plat, err := ParsePlatformSpec([]byte(spec))
		if err != nil {
			t.Fatal(err)
		}
		return &Problem{Graph: taskgraph.Fig8(), Platform: plat, Options: Options{Seed: 7}}
	}
	ideal := mk(`{"types":[{"name":"arm7","freqs_mhz":[200,100,66.67]}],"cores":[{"type":"arm7","count":4}]}`)
	noc := mk(nocSpec)
	bus := mk(`{"types":[{"name":"arm7","freqs_mhz":[200,100,66.67]}],"cores":[{"type":"arm7","count":4}],
	  "interconnect":{"topology":"bus","bandwidth_bits_per_sec":4e9,"hop_latency_sec":1e-4}}`)
	// The same mesh with its defaults spelled out explicitly.
	explicit := mk(`{"types":[{"name":"arm7","freqs_mhz":[200,100,66.67]}],"cores":[{"type":"arm7","count":4}],
	  "interconnect":{"topology":"mesh","bandwidth_bits_per_sec":4e9,"hop_latency_sec":1e-4,
	  "bits_per_cycle":32,"mesh_width":2}}`)

	enc, err := noc.CanonicalEncoding()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(enc), `"v":5`) {
		t.Errorf("interconnect problem did not encode as v5: %s", enc[:60])
	}
	kIdeal, _ := ideal.Key()
	kNoc, err := noc.Key()
	if err != nil {
		t.Fatal(err)
	}
	kBus, _ := bus.Key()
	kExplicit, _ := explicit.Key()
	if kNoc == kIdeal {
		t.Error("contended and ideal fabrics share a problem key")
	}
	if kNoc == kBus {
		t.Error("mesh and bus fabrics share a problem key")
	}
	if kNoc != kExplicit {
		t.Error("defaulted and explicitly-spelled fabrics should share a key")
	}

	// The canonical encoding ships over the shard protocol: decode must
	// reconstruct the fabric and round-trip to the same key.
	dec, err := DecodeProblem(enc)
	if err != nil {
		t.Fatal(err)
	}
	ic := dec.Platform.Interconnect()
	if ic == nil {
		t.Fatal("decoded problem lost its interconnect")
	}
	if *ic != *noc.Platform.Interconnect() {
		t.Fatalf("decoded fabric %+v != original %+v", ic, noc.Platform.Interconnect())
	}
	if kDec, _ := dec.Key(); kDec != kNoc {
		t.Errorf("decoded problem key %s != original %s", kDec, kNoc)
	}

	// A sweep whose extra platform carries the fabric is v5 too.
	sweep := mk(`{"types":[{"name":"arm7","freqs_mhz":[200,100,66.67]}],"cores":[{"type":"arm7","count":4}]}`)
	sweep.Options = Options{Mode: ModeSweep, SweepDeadlines: []float64{0.0028}, Seed: 7}
	sweep.SweepPlatforms = []*arch.Platform{noc.Platform}
	senc, err := sweep.CanonicalEncoding()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(senc), `"v":5`) {
		t.Error("sweep with a contended sweep platform did not encode as v5")
	}
	if _, err := DecodeProblem(senc); err != nil {
		t.Errorf("sweep round trip: %v", err)
	}
}
