package ingest

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"seadopt/internal/arch"
)

// PlatformSpec is the JSON description of an MPSoC platform: a set of named
// processor types (each with its own DVS level table) and a core list
// instantiating them. It is how heterogeneous platforms enter the system —
// the CLI -platform flag and the service's "platform" job field both carry
// one.
//
// A minimal homogeneous spec:
//
//	{
//	  "types": [{"name": "arm7", "freqs_mhz": [200, 100, 66.67]}],
//	  "cores": [{"type": "arm7", "count": 4}]
//	}
//
// A type's table is given either as explicit levels ({"freq_mhz", "vdd"}
// pairs, fastest first) or as "freqs_mhz", deriving voltages with the ARM7
// law of eq. (2). cl and baseline_bits override the power/exposure
// calibration constants; both default to the paper's values.
//
// An optional "interconnect" block declares the communication fabric —
// without one the platform uses the paper's ideal fabric (every edge billed
// at the slower endpoint's clock, no contention):
//
//	{
//	  "types": [{"name": "arm7", "freqs_mhz": [200, 100, 66.67]}],
//	  "cores": [{"type": "arm7", "count": 4}],
//	  "interconnect": {
//	    "topology": "mesh",
//	    "bandwidth_bits_per_sec": 4e9,
//	    "hop_latency_sec": 1e-4
//	  }
//	}
type PlatformSpec struct {
	// Name labels the platform in logs and summaries; it does not
	// participate in problem identity.
	Name string `json:"name,omitempty"`
	// Types declares the processor types cores can reference.
	Types []ProcTypeSpec `json:"types"`
	// Cores instantiates types, in core-index order.
	Cores []CoreSpec `json:"cores"`
	// CL overrides the effective switched capacitance of eq. (5) in farads;
	// 0 selects arch.DefaultCL.
	CL float64 `json:"cl,omitempty"`
	// BaselineBits overrides the per-core baseline SEU-exposed storage;
	// nil selects arch.DefaultBaselineBits.
	BaselineBits *int64 `json:"baseline_bits,omitempty"`
	// Interconnect declares the contended communication fabric; nil selects
	// the ideal fabric.
	Interconnect *InterconnectSpec `json:"interconnect,omitempty"`
}

// InterconnectSpec is the JSON form of arch.Interconnect: a "bus" (one
// shared link) or 2D "mesh" (XY-routed NoC) with finite link bandwidth and
// per-hop latency. Concurrent transfers sharing a link serialize.
type InterconnectSpec struct {
	// Topology is "bus" or "mesh".
	Topology string `json:"topology"`
	// BandwidthBitsPerSec is the link bandwidth; a message of B bits holds
	// each link of its path for B/bandwidth seconds. Required, positive.
	BandwidthBitsPerSec float64 `json:"bandwidth_bits_per_sec"`
	// HopLatencySec is the per-hop routing latency in seconds.
	HopLatencySec float64 `json:"hop_latency_sec,omitempty"`
	// BitsPerCycle converts an edge's communication cycles to message bits;
	// 0 selects arch.DefaultBitsPerCycle (32).
	BitsPerCycle float64 `json:"bits_per_cycle,omitempty"`
	// MeshWidth is the mesh's column count; 0 selects ceil(sqrt(cores)).
	// Must be absent for a bus.
	MeshWidth int `json:"mesh_width,omitempty"`
}

// ProcTypeSpec declares one processor type. Exactly one of Levels and
// FreqsMHz must be given.
type ProcTypeSpec struct {
	// Name is the identifier core entries reference. Required, unique.
	Name string `json:"name"`
	// Levels is the explicit DVS table, fastest first.
	Levels []LevelSpec `json:"levels,omitempty"`
	// FreqsMHz derives the table from operating frequencies (MHz, fastest
	// first) with the ARM7 voltage law of eq. (2).
	FreqsMHz []float64 `json:"freqs_mhz,omitempty"`
}

// LevelSpec is one explicit DVS operating point.
type LevelSpec struct {
	FreqMHz float64 `json:"freq_mhz"`
	Vdd     float64 `json:"vdd"`
}

// CoreSpec instantiates count cores of a declared type.
type CoreSpec struct {
	// Type references a declared processor type by name.
	Type string `json:"type"`
	// Count is the number of cores of this type; absent means 1. An
	// explicit zero or negative count is an error — a spec that
	// instantiates no cores is a mistake, not a platform.
	Count *int `json:"count,omitempty"`
}

// ParsePlatformSpec decodes and validates a JSON platform spec, returning
// the built platform. Errors name the offending element so a spec author
// can fix the document without reading this source.
func ParsePlatformSpec(data []byte) (*arch.Platform, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var spec PlatformSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("ingest: decoding platform spec: %w", err)
	}
	return spec.Build()
}

// ReadPlatformSpec is ParsePlatformSpec over a reader (a spec file).
func ReadPlatformSpec(r io.Reader) (*arch.Platform, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ingest: reading platform spec: %w", err)
	}
	return ParsePlatformSpec(data)
}

// Build validates the spec and constructs the platform.
func (spec *PlatformSpec) Build() (*arch.Platform, error) {
	if len(spec.Types) == 0 {
		return nil, fmt.Errorf("ingest: platform spec declares no processor types; add a \"types\" list")
	}
	types := make([]arch.ProcType, len(spec.Types))
	index := make(map[string]int, len(spec.Types))
	var names []string
	for i, ts := range spec.Types {
		if ts.Name == "" {
			return nil, fmt.Errorf("ingest: platform spec: processor type %d has no name", i)
		}
		if _, dup := index[ts.Name]; dup {
			return nil, fmt.Errorf("ingest: platform spec: duplicate processor type %q; type names must be unique", ts.Name)
		}
		levels, err := ts.levels()
		if err != nil {
			return nil, fmt.Errorf("ingest: platform spec: processor type %q: %w", ts.Name, err)
		}
		types[i] = arch.ProcType{Name: ts.Name, Levels: levels}
		if err := types[i].Validate(); err != nil {
			return nil, fmt.Errorf("ingest: platform spec: processor type %q: %w", ts.Name, err)
		}
		index[ts.Name] = i
		names = append(names, ts.Name)
	}
	if len(spec.Cores) == 0 {
		return nil, fmt.Errorf("ingest: platform spec declares no cores; add a \"cores\" list referencing the declared types")
	}
	var coreTypes []int
	for i, cs := range spec.Cores {
		ti, ok := index[cs.Type]
		if !ok {
			return nil, fmt.Errorf("ingest: platform spec: cores entry %d references unknown processor type %q (declared: %s)",
				i, cs.Type, strings.Join(names, ", "))
		}
		count := 1
		if cs.Count != nil {
			count = *cs.Count
		}
		if count < 1 {
			return nil, fmt.Errorf("ingest: platform spec: cores entry %d instantiates zero cores (count %d); counts must be ≥ 1", i, count)
		}
		for c := 0; c < count; c++ {
			coreTypes = append(coreTypes, ti)
		}
	}
	var opts []arch.Option
	if spec.CL != 0 {
		opts = append(opts, arch.WithCL(spec.CL))
	}
	if spec.BaselineBits != nil {
		opts = append(opts, arch.WithBaselineBits(*spec.BaselineBits))
	}
	if ic := spec.Interconnect; ic != nil {
		opts = append(opts, arch.WithInterconnect(arch.Interconnect{
			Topology:      arch.Topology(ic.Topology),
			BandwidthBps:  ic.BandwidthBitsPerSec,
			HopLatencySec: ic.HopLatencySec,
			BitsPerCycle:  ic.BitsPerCycle,
			MeshWidth:     ic.MeshWidth,
		}))
	}
	p, err := arch.NewHeterogeneousPlatform(types, coreTypes, opts...)
	if err != nil {
		return nil, fmt.Errorf("ingest: platform spec: %w", err)
	}
	return p, nil
}

// levels resolves a type's DVS table from whichever encoding the spec used.
func (ts ProcTypeSpec) levels() ([]arch.Level, error) {
	switch {
	case len(ts.Levels) > 0 && len(ts.FreqsMHz) > 0:
		return nil, fmt.Errorf("give either \"levels\" or \"freqs_mhz\", not both")
	case len(ts.FreqsMHz) > 0:
		levels, err := arch.LevelsFromFrequencies(ts.FreqsMHz...)
		if err != nil {
			return nil, err
		}
		return levels, nil
	case len(ts.Levels) > 0:
		out := make([]arch.Level, len(ts.Levels))
		for i, l := range ts.Levels {
			out[i] = arch.Level{S: i + 1, FreqMHz: l.FreqMHz, Vdd: l.Vdd}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("empty DVS level table: give \"levels\" or \"freqs_mhz\"")
	}
}
