package ingest

import (
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
)

func modeProblem(t *testing.T, opt Options) *Problem {
	t.Helper()
	p, err := arch.NewPlatform(4, arch.ARM7Levels3())
	if err != nil {
		t.Fatal(err)
	}
	return &Problem{Graph: taskgraph.MPEG2(), Platform: p, Options: opt}
}

func mustKey(t *testing.T, opt Options) string {
	t.Helper()
	k, err := modeProblem(t, opt).Key()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestParseMode(t *testing.T) {
	for name, want := range map[string]string{
		"": ModeScalar, "scalar": ModeScalar, "single": ModeScalar,
		"pareto": ModePareto, "frontier": ModePareto, "multi": ModePareto,
	} {
		got, err := ParseMode(name)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %q, %v; want %q", name, got, err, want)
		}
	}
	if _, err := ParseMode("tri-objective"); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestModeProblemIdentity: the mode and the Pareto objectives are part of
// the problem key — a frontier is never served for a scalar request and
// distinct objective selections never share cache entries — while aliases
// and canonical-rendering differences collapse onto one key.
func TestModeProblemIdentity(t *testing.T) {
	base := Options{DeadlineSec: taskgraph.MPEG2Deadline, StreamIterations: taskgraph.MPEG2Frames, Seed: 1}

	scalar := mustKey(t, base)
	explicitScalar := base
	explicitScalar.Mode = ModeScalar
	if got := mustKey(t, explicitScalar); got != scalar {
		t.Error("empty mode and explicit scalar hash apart")
	}

	paretoOpt := base
	paretoOpt.Mode = ModePareto
	paretoKey := mustKey(t, paretoOpt)
	if paretoKey == scalar {
		t.Error("scalar and pareto problems share a key")
	}

	explicitAll := paretoOpt
	explicitAll.Objectives = "gamma, makespan,power"
	if got := mustKey(t, explicitAll); got != paretoKey {
		t.Error("default objectives and their explicit spelling hash apart")
	}

	subset := paretoOpt
	subset.Objectives = "power,gamma"
	subsetKey := mustKey(t, subset)
	if subsetKey == paretoKey {
		t.Error("objective subset shares the full-objective key")
	}
	reordered := paretoOpt
	reordered.Objectives = "gamma,power"
	if got := mustKey(t, reordered); got != subsetKey {
		t.Error("objective order split the key")
	}

	// Scalar submissions ignore objectives — none can be set (Validate
	// rejects them), so the field cannot split scalar keys.
	aliasMode := base
	aliasMode.Mode = "single"
	if got := mustKey(t, aliasMode); got != scalar {
		t.Error("mode alias split the scalar key")
	}
}

func TestModeValidation(t *testing.T) {
	bad := Options{Mode: "tri"}
	if bad.Validate() == nil {
		t.Error("unknown mode validated")
	}
	bad = Options{Mode: ModePareto, Baseline: "reg"}
	if bad.Validate() == nil {
		t.Error("pareto mode with a baseline mapper validated")
	}
	bad = Options{Objectives: "power"}
	if bad.Validate() == nil {
		t.Error("objectives without pareto mode validated")
	}
	bad = Options{Mode: ModePareto, Objectives: "power,latency"}
	if bad.Validate() == nil {
		t.Error("unknown objective validated")
	}
	good := Options{Mode: ModePareto, Objectives: "power, gamma"}
	if err := good.Validate(); err != nil {
		t.Errorf("valid pareto options rejected: %v", err)
	}
}
