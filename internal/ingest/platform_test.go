package ingest

import (
	"strings"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
)

// heteroSpec is a well-formed mixed spec used across the tests: two Table-I
// ARM7 cores, one 2-level core and one explicit-level 4-level core.
const heteroSpec = `{
  "name": "mixed4",
  "types": [
    {"name": "arm7x3", "freqs_mhz": [200, 100, 66.667]},
    {"name": "arm7x2", "freqs_mhz": [200, 100]},
    {"name": "fast4", "levels": [
      {"freq_mhz": 236, "vdd": 1.2},
      {"freq_mhz": 200, "vdd": 1.0},
      {"freq_mhz": 100, "vdd": 0.58},
      {"freq_mhz": 66.667, "vdd": 0.44}
    ]}
  ],
  "cores": [
    {"type": "arm7x3", "count": 2},
    {"type": "arm7x2"},
    {"type": "fast4"}
  ]
}`

func TestParsePlatformSpec(t *testing.T) {
	p, err := ParsePlatformSpec([]byte(heteroSpec))
	if err != nil {
		t.Fatalf("ParsePlatformSpec: %v", err)
	}
	if p.Cores() != 4 || p.Homogeneous() {
		t.Fatalf("Cores=%d Homogeneous=%v", p.Cores(), p.Homogeneous())
	}
	if got := p.LevelCounts(); got[0] != 3 || got[1] != 3 || got[2] != 2 || got[3] != 4 {
		t.Errorf("LevelCounts = %v", got)
	}
	if p.TypeName(0) != "arm7x3" || p.TypeName(3) != "fast4" {
		t.Errorf("type names: %s, %s", p.TypeName(0), p.TypeName(3))
	}
	if f := p.MustCoreLevel(3, 1).FreqMHz; f != 236 {
		t.Errorf("core 3 s=1 = %v MHz, want 236", f)
	}
	// Calibration defaults hold when the spec is silent.
	if p.CL() != arch.DefaultCL || p.BaselineBits() != arch.DefaultBaselineBits {
		t.Errorf("CL=%v BaselineBits=%d, want defaults", p.CL(), p.BaselineBits())
	}
}

func TestParsePlatformSpecOverrides(t *testing.T) {
	spec := `{
	  "types": [{"name": "arm7", "freqs_mhz": [200, 100]}],
	  "cores": [{"type": "arm7", "count": 2}],
	  "cl": 10e-12,
	  "baseline_bits": 0
	}`
	p, err := ParsePlatformSpec([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if p.CL() != 10e-12 {
		t.Errorf("CL = %v, want 10e-12", p.CL())
	}
	if p.BaselineBits() != 0 {
		t.Errorf("BaselineBits = %d, want explicit 0", p.BaselineBits())
	}
}

// TestPlatformSpecErrors: every rejected spec must say what is wrong and
// name the offending element.
func TestPlatformSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want []string // substrings of the error, all required
	}{
		{
			name: "no types",
			spec: `{"cores": [{"type": "arm7"}]}`,
			want: []string{"no processor types"},
		},
		{
			name: "unnamed type",
			spec: `{"types": [{"freqs_mhz": [200]}], "cores": [{"type": ""}]}`,
			want: []string{"type 0", "no name"},
		},
		{
			name: "duplicate type names",
			spec: `{"types": [{"name": "a", "freqs_mhz": [200]}, {"name": "a", "freqs_mhz": [100]}],
			        "cores": [{"type": "a"}]}`,
			want: []string{"duplicate processor type", `"a"`, "unique"},
		},
		{
			name: "empty level table",
			spec: `{"types": [{"name": "a"}], "cores": [{"type": "a"}]}`,
			want: []string{`type "a"`, "empty DVS level table"},
		},
		{
			name: "both levels and freqs",
			spec: `{"types": [{"name": "a", "freqs_mhz": [200], "levels": [{"freq_mhz": 200, "vdd": 1}]}],
			        "cores": [{"type": "a"}]}`,
			want: []string{`type "a"`, "not both"},
		},
		{
			name: "non-monotone frequencies",
			spec: `{"types": [{"name": "a", "freqs_mhz": [100, 200]}], "cores": [{"type": "a"}]}`,
			want: []string{`type "a"`, "strictly decreasing"},
		},
		{
			name: "non-monotone explicit levels",
			spec: `{"types": [{"name": "a", "levels": [
			          {"freq_mhz": 100, "vdd": 0.58}, {"freq_mhz": 200, "vdd": 1.0}]}],
			        "cores": [{"type": "a"}]}`,
			want: []string{`type "a"`, "fastest-first"},
		},
		{
			name: "non-positive level",
			spec: `{"types": [{"name": "a", "levels": [{"freq_mhz": 200, "vdd": 0}]}],
			        "cores": [{"type": "a"}]}`,
			want: []string{`type "a"`, "non-positive"},
		},
		{
			name: "no cores list",
			spec: `{"types": [{"name": "a", "freqs_mhz": [200]}]}`,
			want: []string{"no cores"},
		},
		{
			name: "zero cores instantiated",
			spec: `{"types": [{"name": "a", "freqs_mhz": [200]}], "cores": [{"type": "a", "count": 0}]}`,
			want: []string{"zero cores"},
		},
		{
			name: "negative count",
			spec: `{"types": [{"name": "a", "freqs_mhz": [200]}], "cores": [{"type": "a", "count": -2}]}`,
			want: []string{"entry 0", "zero cores"},
		},
		{
			name: "unknown type ref",
			spec: `{"types": [{"name": "a", "freqs_mhz": [200]}], "cores": [{"type": "b"}]}`,
			want: []string{"entry 0", `unknown processor type "b"`, "declared: a"},
		},
		{
			name: "unknown field",
			spec: `{"types": [{"name": "a", "freqs_mhz": [200]}], "cores": [{"type": "a"}], "levels": 3}`,
			want: []string{"decoding platform spec"},
		},
		{
			name: "not json",
			spec: `cores: 4`,
			want: []string{"decoding platform spec"},
		},
		{
			name: "negative cl",
			spec: `{"types": [{"name": "a", "freqs_mhz": [200]}], "cores": [{"type": "a"}], "cl": -1}`,
			want: []string{"C_L"},
		},
		{
			name: "negative baseline bits",
			spec: `{"types": [{"name": "a", "freqs_mhz": [200]}], "cores": [{"type": "a"}], "baseline_bits": -5}`,
			want: []string{"baseline bits"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParsePlatformSpec([]byte(c.spec))
			if err == nil {
				t.Fatalf("spec accepted:\n%s", c.spec)
			}
			for _, w := range c.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q does not mention %q", err, w)
				}
			}
		})
	}
}

func TestReadPlatformSpec(t *testing.T) {
	p, err := ReadPlatformSpec(strings.NewReader(heteroSpec))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cores() != 4 {
		t.Errorf("Cores = %d", p.Cores())
	}
}

// TestPlatformSpecProblemKeys: spec-built platforms participate in problem
// identity — a homogeneous spec hashes identically to the equivalent
// NewPlatform platform (names and duplicate declarations canonicalized
// away), and physically different platforms hash apart.
func TestPlatformSpecProblemKeys(t *testing.T) {
	g := taskgraph.MPEG2()
	key := func(p *arch.Platform) string {
		k, err := (&Problem{Graph: g, Platform: p, Options: Options{}}).Key()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	direct, err := arch.NewPlatform(4, arch.ARM7Levels3())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParsePlatformSpec([]byte(`{
	  "types": [{"name": "anything", "freqs_mhz": [200, 100, 66.66666666666667]}],
	  "cores": [{"type": "anything", "count": 4}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if key(direct) != key(spec) {
		t.Error("homogeneous spec and NewPlatform platform hash apart (names should not participate)")
	}

	// Duplicate type declarations with identical tables collapse.
	dup, err := ParsePlatformSpec([]byte(`{
	  "types": [{"name": "a", "freqs_mhz": [200, 100, 66.66666666666667]},
	            {"name": "b", "freqs_mhz": [200, 100, 66.66666666666667]}],
	  "cores": [{"type": "a", "count": 2}, {"type": "b", "count": 2}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if key(direct) != key(dup) {
		t.Error("duplicate identical type declarations changed the key")
	}

	hetero, err := ParsePlatformSpec([]byte(heteroSpec))
	if err != nil {
		t.Fatal(err)
	}
	if key(direct) == key(hetero) {
		t.Error("heterogeneous platform hashes like the homogeneous one")
	}
	// The canonical encoding records the v4 format.
	enc, err := (&Problem{Graph: g, Platform: hetero, Options: Options{}}).CanonicalEncoding()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(enc), `"v":4`) || !strings.Contains(string(enc), `"core_types"`) {
		t.Errorf("canonical encoding missing v4 platform form: %s", enc[:120])
	}
}
