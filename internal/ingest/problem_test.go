package ingest

import (
	"strings"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/faults"
	"seadopt/internal/taskgraph"
)

func testProblem(t *testing.T) *Problem {
	t.Helper()
	p, err := arch.NewPlatform(4, arch.ARM7Levels3())
	if err != nil {
		t.Fatal(err)
	}
	return &Problem{
		Graph:    taskgraph.MPEG2(),
		Platform: p,
		Options: Options{
			DeadlineSec:      taskgraph.MPEG2Deadline,
			StreamIterations: taskgraph.MPEG2Frames,
			Seed:             2010,
		},
	}
}

func TestProblemKeyStable(t *testing.T) {
	p := testProblem(t)
	k1, err := p.Key()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(k1, "sha256:") || len(k1) != len("sha256:")+64 {
		t.Fatalf("malformed key %q", k1)
	}
	k2, err := p.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("key not stable: %q vs %q", k1, k2)
	}
	// A structurally identical problem built from scratch hashes the same.
	k3, err := testProblem(t).Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k3 {
		t.Fatalf("independent identical problems differ: %q vs %q", k1, k3)
	}
}

func TestProblemKeySentinelNormalization(t *testing.T) {
	base := testProblem(t)
	k0, _ := base.Key()

	// SER 0 and the explicit paper default are the same problem.
	explicit := testProblem(t)
	explicit.Options.SER = faults.DefaultSER
	ke, _ := explicit.Key()
	if ke != k0 {
		t.Error("SER 0 and explicit DefaultSER should share a key")
	}
	// Every negative SER means "no soft errors".
	n1, n2 := testProblem(t), testProblem(t)
	n1.Options.SER, n2.Options.SER = -1, -42
	kn1, _ := n1.Key()
	kn2, _ := n2.Key()
	if kn1 != kn2 {
		t.Error("all negative SER values should share a key")
	}
	if kn1 == k0 {
		t.Error("zero-rate and default-rate problems must differ")
	}
	// StreamIterations 0 and 1 are both plain DAG semantics.
	i0, i1 := testProblem(t), testProblem(t)
	i0.Options.StreamIterations, i1.Options.StreamIterations = 0, 1
	ki0, _ := i0.Key()
	ki1, _ := i1.Key()
	if ki0 != ki1 {
		t.Error("StreamIterations 0 and 1 should share a key")
	}
}

func TestProblemKeyDiscriminates(t *testing.T) {
	keys := map[string]string{}
	add := func(name string, p *Problem) {
		k, err := p.Key()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for prev, pk := range keys {
			if pk == k {
				t.Errorf("%s and %s collide on %s", name, prev, k)
			}
		}
		keys[name] = k
	}
	add("base", testProblem(t))

	g := testProblem(t)
	g.Graph = taskgraph.Fig8()
	add("different graph", g)

	pl := testProblem(t)
	pl.Platform = arch.MustNewPlatform(6, arch.ARM7Levels3())
	add("different cores", pl)

	lv := testProblem(t)
	lv.Platform = arch.MustNewPlatform(4, arch.ARM7Levels2())
	add("different levels", lv)

	dl := testProblem(t)
	dl.Options.DeadlineSec = 1.0
	add("different deadline", dl)

	sd := testProblem(t)
	sd.Options.Seed = 7
	add("different seed", sd)

	bl := testProblem(t)
	bl.Options.Baseline = "regtime"
	add("baseline mapper", bl)

	mv := testProblem(t)
	mv.Options.SearchMoves = 1234
	add("search budget", mv)
}

func TestProblemKeyValidation(t *testing.T) {
	p := testProblem(t)
	p.Options.Baseline = "zigzag"
	if _, err := p.Key(); err == nil {
		t.Error("accepted unknown baseline")
	}
	p = testProblem(t)
	p.Graph = nil
	if _, err := p.Key(); err == nil {
		t.Error("accepted nil graph")
	}
	p = testProblem(t)
	p.Options.DeadlineSec = -3
	if _, err := p.Key(); err == nil {
		t.Error("accepted negative deadline")
	}
}
