// Package ingest imports externally-authored task graphs into the optimizer.
//
// The optimizer's native workloads (MPEG-2, Fig. 8, §V random graphs) are
// constructed in code; serving arbitrary scenarios requires accepting task
// graphs authored outside this repository. The package understands three
// formats:
//
//   - JSON: the canonical self-contained encoding produced by
//     taskgraph.Graph.MarshalJSON (register inventory + tasks + edges).
//   - TGFF: the task-graph subset of the "Task Graphs For Free" generator
//     output (@TASK_GRAPH blocks with TASK/ARC statements, plus optional
//     @WCET/@COMMUN/@REGISTERS attribute tables).
//   - DOT: Graphviz digraphs, including the ones rendered by
//     taskgraph.Graph.DOT, with costs in `cycles`/`regbits` attributes or
//     parsed from "Name\nN cyc" labels.
//
// Every importer produces a validated taskgraph.Graph: structural errors
// (cycles, duplicate task IDs, duplicate edges, dangling references) and
// disconnected graphs are rejected with errors that name the offending
// element. Formats that carry no WCET or register data fall back to the
// deterministic defaulting rules below, so the same input bytes always
// produce the same graph — a prerequisite for the content-addressed
// ProblemKey the result cache is keyed by.
//
// # Defaulting rules
//
// TGFF types index the optional attribute tables; when a table is absent the
// defaults scale with the type so distinct types stay distinguishable:
//
//   - task cycles:   @WCET[type] if the table exists, else
//     DefaultComputeCycles × (type+1);
//   - arc cycles:    @COMMUN[type] if the table exists, else
//     DefaultCommCycles × (type+1);
//   - register bits: @REGISTERS[type] if the table exists, else
//     1024 × (1 + type mod 5) — the paper's 1–5 kbit footprint range.
//
// DOT nodes default to DefaultComputeCycles when neither a `cycles`
// attribute nor a "N cyc" label line is present, DOT edges default to zero
// communication cost, and every DOT/TGFF task owns one private register
// (`loc_<task>`) sized by the rules above (DefaultRegisterBits for DOT
// without a `regbits` attribute). Register *sharing* between tasks is only
// expressible in the JSON format, which carries the full inventory.
package ingest

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"seadopt/internal/taskgraph"
)

// Format identifies a task-graph interchange format.
type Format string

// The supported interchange formats.
const (
	FormatJSON Format = "json"
	FormatTGFF Format = "tgff"
	FormatDOT  Format = "dot"
)

// Deterministic defaulting constants (see the package comment).
const (
	// DefaultComputeCycles is one §V cost unit: 3.5e6 clock cycles.
	DefaultComputeCycles = taskgraph.RandomCycleUnit
	// DefaultCommCycles is the per-type communication default (0.1 unit).
	DefaultCommCycles = taskgraph.RandomCycleUnit / 10
	// DefaultRegisterBits sizes the private register of a DOT task that
	// carries no regbits attribute (2 kbit, mid of the paper's range).
	DefaultRegisterBits = 2048
)

// ParseFormat maps a user-supplied format name (or file extension) to a
// Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimPrefix(strings.TrimSpace(s), ".")) {
	case "json":
		return FormatJSON, nil
	case "tgff":
		return FormatTGFF, nil
	case "dot", "gv":
		return FormatDOT, nil
	default:
		return "", fmt.Errorf("ingest: unknown task-graph format %q (want json, tgff or dot)", s)
	}
}

// Detect sniffs the format of a task-graph document: '{' opens the JSON
// encoding, '@' opens a TGFF section, and a digraph keyword opens DOT.
// It returns an error when no format matches.
func Detect(data []byte) (Format, error) {
	for _, line := range bytes.Split(data, []byte("\n")) {
		t := strings.TrimSpace(string(line))
		if t == "" || strings.HasPrefix(t, "#") || strings.HasPrefix(t, "//") {
			continue
		}
		switch {
		case strings.HasPrefix(t, "{"):
			return FormatJSON, nil
		case strings.HasPrefix(t, "@"):
			return FormatTGFF, nil
		case strings.HasPrefix(t, "digraph"), strings.HasPrefix(t, "strict"), strings.HasPrefix(t, "graph"):
			return FormatDOT, nil
		default:
			return "", fmt.Errorf("ingest: cannot detect task-graph format from leading line %q", t)
		}
	}
	return "", fmt.Errorf("ingest: empty task-graph document")
}

// Parse reads one task graph in the given format from r and returns it
// validated (acyclic, weakly connected, unique task names).
func Parse(f Format, r io.Reader) (*taskgraph.Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ingest: reading task graph: %w", err)
	}
	return ParseBytes(f, data)
}

// ParseBytes is Parse over an in-memory document.
func ParseBytes(f Format, data []byte) (*taskgraph.Graph, error) {
	var g *taskgraph.Graph
	var err error
	switch f {
	case FormatJSON:
		g, err = taskgraph.FromJSON(data)
	case FormatTGFF:
		g, err = parseTGFF(data)
	case FormatDOT:
		g, err = parseDOT(data)
	default:
		return nil, fmt.Errorf("ingest: unknown task-graph format %q (want json, tgff or dot)", f)
	}
	if err != nil {
		return nil, err
	}
	if err := ValidateGraph(g); err != nil {
		return nil, err
	}
	return g, nil
}

// ValidateGraph enforces the ingestion contract on top of the structural
// checks taskgraph.Builder already performs (acyclicity, duplicate edges,
// dangling endpoints): task names must be unique, and the graph must be
// weakly connected — a disconnected "graph" is almost always two workloads
// pasted together, and scheduling them as one corrupts the deadline and
// exposure models.
func ValidateGraph(g *taskgraph.Graph) error {
	seen := make(map[string]taskgraph.TaskID, g.N())
	for _, t := range g.Tasks() {
		if prev, dup := seen[t.Name]; dup {
			return fmt.Errorf("ingest: duplicate task name %q (tasks %d and %d); task names are IDs and must be unique",
				t.Name, prev, t.ID)
		}
		seen[t.Name] = t.ID
	}
	// Weak connectivity: BFS from task 0 treating every edge as undirected.
	if g.N() > 1 {
		visited := make([]bool, g.N())
		queue := []taskgraph.TaskID{0}
		visited[0] = true
		count := 1
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			for _, e := range g.Succs(id) {
				if !visited[e.To] {
					visited[e.To] = true
					count++
					queue = append(queue, e.To)
				}
			}
			for _, e := range g.Preds(id) {
				if !visited[e.From] {
					visited[e.From] = true
					count++
					queue = append(queue, e.From)
				}
			}
		}
		if count != g.N() {
			for id, ok := range visited {
				if !ok {
					return fmt.Errorf("ingest: graph %q is not weakly connected: task %q (%d of %d tasks reachable from %q); split disconnected workloads into separate jobs",
						g.Name(), g.Task(taskgraph.TaskID(id)).Name, count, g.N(), g.Task(0).Name)
				}
			}
		}
	}
	return nil
}
