package ingest

import "testing"

// TestProblemKeyStrategy: strategies participate in problem identity —
// aliases collapse, distinct strategies (and sampled budgets) hash apart,
// and exact strategies never alias the approximate one.
func TestProblemKeyStrategy(t *testing.T) {
	key := func(strategy string, budget int) string {
		t.Helper()
		p := testProblem(t)
		p.Options.Strategy = strategy
		p.Options.SampleBudget = budget
		k, err := p.Key()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	def := key("", 0)
	if key("bnb", 0) != def {
		t.Error("empty strategy and bnb hash differently")
	}
	if key("branch-and-bound", 0) != def {
		t.Error("strategy alias branch-and-bound hashes apart from bnb")
	}
	exh := key("exhaustive", 0)
	if exh == def {
		t.Error("exhaustive shares the branch-and-bound key; cached results must not cross strategies")
	}
	smp := key("sampled", 0)
	if smp == def || smp == exh {
		t.Error("sampled shares an exact strategy's key")
	}
	// Sampled budget 0 normalizes to the engine default budget; the exact
	// strategies discard the budget entirely.
	if key("sampled", 256) != smp {
		t.Error("sampled budget 0 does not normalize to the default budget")
	}
	if key("sampled", 64) == smp {
		t.Error("distinct sampled budgets share a key")
	}
	if key("bnb", 64) != def {
		t.Error("sample budget leaked into an exact strategy's key")
	}

	p := testProblem(t)
	p.Options.Strategy = "greedy"
	if _, err := p.Key(); err == nil {
		t.Error("unknown strategy hashed instead of failing validation")
	}
	p = testProblem(t)
	p.Options.SampleBudget = -1
	if _, err := p.Key(); err == nil {
		t.Error("negative sample budget hashed instead of failing validation")
	}
}
