package ingest

import (
	"testing"

	"seadopt/internal/taskgraph"
)

const sampleTGFF = `# three-stage pipeline with attribute tables
@TASK_GRAPH 0 {
	PERIOD 300
	TASK src TYPE 0
	TASK mid TYPE 1
	TASK sink TYPE 0
	ARC a0 FROM src TO mid TYPE 0
	ARC a1 FROM mid TO sink TYPE 1
}
@WCET 0 {
	0 3500000
	1 7000000
}
@COMMUN 0 {
	0 100000
	1 200000
}
@REGISTERS 0 {
	0 1024
	1 4096
}
`

func TestTGFFWithTables(t *testing.T) {
	g, err := ParseBytes(FormatTGFF, []byte(sampleTGFF))
	if err != nil {
		t.Fatalf("ParseBytes(tgff): %v", err)
	}
	if g.Name() != "tgff-0" {
		t.Errorf("name %q, want tgff-0", g.Name())
	}
	if g.N() != 3 {
		t.Fatalf("got %d tasks, want 3", g.N())
	}
	wantCycles := map[string]int64{"src": 3_500_000, "mid": 7_000_000, "sink": 3_500_000}
	wantBits := map[string]int64{"src": 1024, "mid": 4096, "sink": 1024}
	for _, task := range g.Tasks() {
		if task.Cycles != wantCycles[task.Name] {
			t.Errorf("task %s: %d cycles, want %d", task.Name, task.Cycles, wantCycles[task.Name])
		}
		if got := g.Inventory().SetBits(task.Registers); got != wantBits[task.Name] {
			t.Errorf("task %s: %d register bits, want %d", task.Name, got, wantBits[task.Name])
		}
	}
	if c, ok := g.EdgeCost(0, 1); !ok || c != 100_000 {
		t.Errorf("edge src->mid cost %d,%v; want 100000", c, ok)
	}
	if c, ok := g.EdgeCost(1, 2); !ok || c != 200_000 {
		t.Errorf("edge mid->sink cost %d,%v; want 200000", c, ok)
	}
}

func TestTGFFDefaultingRules(t *testing.T) {
	const doc = `@TASK_GRAPH 0 {
	TASK a TYPE 0
	TASK b TYPE 2
	TASK c TYPE 6
	ARC e0 FROM a TO b TYPE 0
	ARC e1 FROM b TO c TYPE 3
}
`
	g, err := ParseBytes(FormatTGFF, []byte(doc))
	if err != nil {
		t.Fatalf("ParseBytes(tgff): %v", err)
	}
	// cycles = DefaultComputeCycles × (type+1)
	wantCycles := map[string]int64{
		"a": 1 * DefaultComputeCycles,
		"b": 3 * DefaultComputeCycles,
		"c": 7 * DefaultComputeCycles,
	}
	// bits = 1024 × (1 + type mod 5)
	wantBits := map[string]int64{"a": 1024, "b": 3 * 1024, "c": 2 * 1024}
	for _, task := range g.Tasks() {
		if task.Cycles != wantCycles[task.Name] {
			t.Errorf("task %s: %d cycles, want %d", task.Name, task.Cycles, wantCycles[task.Name])
		}
		if got := g.Inventory().SetBits(task.Registers); got != wantBits[task.Name] {
			t.Errorf("task %s: %d register bits, want %d", task.Name, got, wantBits[task.Name])
		}
	}
	// comm = DefaultCommCycles × (type+1)
	if c, _ := g.EdgeCost(0, 1); c != 1*DefaultCommCycles {
		t.Errorf("edge a->b cost %d, want %d", c, DefaultCommCycles)
	}
	if c, _ := g.EdgeCost(1, 2); c != 4*DefaultCommCycles {
		t.Errorf("edge b->c cost %d, want %d", c, 4*DefaultCommCycles)
	}
}

// TestTGFFDeterministic: same bytes, same graph — the property the
// content-addressed cache needs from every importer.
func TestTGFFDeterministic(t *testing.T) {
	g1, err := ParseBytes(FormatTGFF, []byte(sampleTGFF))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ParseBytes(FormatTGFF, []byte(sampleTGFF))
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := g1.MarshalJSON()
	j2, _ := g2.MarshalJSON()
	if string(j1) != string(j2) {
		t.Fatalf("two parses of the same TGFF differ:\n%s\n%s", j1, j2)
	}
}

func TestTGFFUnknownSectionsSkipped(t *testing.T) {
	const doc = `@PE 0 {
	0 1.0 2.0 3.0
}
@TASK_GRAPH 0 {
	TASK a TYPE 0
	TASK b TYPE 0
	ARC e FROM a TO b TYPE 0
}
@HYPERPERIOD 0 {
	300
}
`
	g, err := ParseBytes(FormatTGFF, []byte(doc))
	if err != nil {
		t.Fatalf("unknown sections should be skipped: %v", err)
	}
	if g.N() != 2 {
		t.Fatalf("got %d tasks, want 2", g.N())
	}
}

func TestTGFFMalformed(t *testing.T) {
	cases := map[string]string{
		"no graph":        "@WCET 0 {\n0 5\n}\n",
		"empty graph":     "@TASK_GRAPH 0 {\n}\n",
		"bad task":        "@TASK_GRAPH 0 {\nTASK a\n}\n",
		"bad arc":         "@TASK_GRAPH 0 {\nTASK a TYPE 0\nARC e FROM a TYPE 0\n}\n",
		"negative type":   "@TASK_GRAPH 0 {\nTASK a TYPE -1\n}\n",
		"unclosed":        "@TASK_GRAPH 0 {\nTASK a TYPE 0\n",
		"stray statement": "TASK a TYPE 0\n",
		"bad table row":   sampleTGFF + "@WCET 1 {\n0 1 2\n}\n",
		"zero table cost": "@TASK_GRAPH 0 {\nTASK a TYPE 0\n}\n@WCET 0 {\n0 0\n}\n",
	}
	for name, doc := range cases {
		if _, err := ParseBytes(FormatTGFF, []byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestTGFFFeedsOptimizer builds a platform-sized TGFF workload and checks it
// is schedulable end to end (the ingest → taskgraph handoff).
func TestTGFFFeedsOptimizer(t *testing.T) {
	g, err := ParseBytes(FormatTGFF, []byte(sampleTGFF))
	if err != nil {
		t.Fatal(err)
	}
	if g.CriticalPathCycles() <= 0 {
		t.Fatal("degenerate critical path")
	}
	order := g.TopoOrder()
	if len(order) != g.N() {
		t.Fatalf("topo order covers %d of %d tasks", len(order), g.N())
	}
	var _ taskgraph.TaskID = order[0]
}
