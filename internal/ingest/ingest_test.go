package ingest

import (
	"strings"
	"testing"

	"seadopt/internal/taskgraph"
)

func TestParseFormat(t *testing.T) {
	good := map[string]Format{
		"json": FormatJSON, "JSON": FormatJSON, ".json": FormatJSON,
		"tgff": FormatTGFF, ".tgff": FormatTGFF,
		"dot": FormatDOT, "gv": FormatDOT, ".gv": FormatDOT,
	}
	for in, want := range good {
		f, err := ParseFormat(in)
		if err != nil || f != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", in, f, err, want)
		}
	}
	for _, in := range []string{"", "xml", "graphml"} {
		if _, err := ParseFormat(in); err == nil {
			t.Errorf("ParseFormat(%q) accepted", in)
		}
	}
}

func TestDetect(t *testing.T) {
	cases := map[string]Format{
		"{\"name\":\"g\"}":                  FormatJSON,
		"# comment\n@TASK_GRAPH 0 {\n}":     FormatTGFF,
		"// c\ndigraph g { a; }":            FormatDOT,
		"  \n\nstrict digraph g { a -> b;}": FormatDOT,
	}
	for in, want := range cases {
		f, err := Detect([]byte(in))
		if err != nil || f != want {
			t.Errorf("Detect(%q) = %v, %v; want %v", in, f, err, want)
		}
	}
	for _, in := range []string{"", "hello world", "<graphml/>"} {
		if _, err := Detect([]byte(in)); err == nil {
			t.Errorf("Detect(%q) accepted", in)
		}
	}
}

// TestParseJSONRoundTrip feeds the canonical encoding of a native workload
// through the JSON ingest path.
func TestParseJSONRoundTrip(t *testing.T) {
	want := taskgraph.MPEG2()
	data, err := want.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	g, err := ParseBytes(FormatJSON, data)
	if err != nil {
		t.Fatalf("ParseBytes(json): %v", err)
	}
	if g.N() != want.N() || len(g.Edges()) != len(want.Edges()) {
		t.Fatalf("got %d tasks/%d edges, want %d/%d", g.N(), len(g.Edges()), want.N(), len(want.Edges()))
	}
}

// errorCase pairs an invalid document with a fragment its error must name,
// so the rejection is actionable rather than a bare "invalid input".
type errorCase struct {
	format Format
	doc    string
	want   string
}

func TestRejectionsAreActionable(t *testing.T) {
	cases := map[string]errorCase{
		"json cyclic": {FormatJSON, `{"name":"c","registers":[],
			"tasks":[{"name":"a","cycles":1,"registers":[]},{"name":"b","cycles":1,"registers":[]}],
			"edges":[{"from":0,"to":1,"cycles":0},{"from":1,"to":0,"cycles":0}]}`, "cycle"},
		"json disconnected": {FormatJSON, `{"name":"d","registers":[],
			"tasks":[{"name":"a","cycles":1,"registers":[]},{"name":"b","cycles":1,"registers":[]}],
			"edges":[]}`, "not weakly connected"},
		"json duplicate task name": {FormatJSON, `{"name":"dup","registers":[],
			"tasks":[{"name":"a","cycles":1,"registers":[]},{"name":"a","cycles":2,"registers":[]}],
			"edges":[{"from":0,"to":1,"cycles":0}]}`, "duplicate task name"},
		"json duplicate register": {FormatJSON, `{"name":"dup","registers":[{"id":"x","bits":8},{"id":"x","bits":16}],
			"tasks":[{"name":"a","cycles":1,"registers":["x"]}],"edges":[]}`, "duplicate register"},

		"tgff cyclic": {FormatTGFF, `@TASK_GRAPH 0 {
			TASK a TYPE 0
			TASK b TYPE 0
			ARC e0 FROM a TO b TYPE 0
			ARC e1 FROM b TO a TYPE 0
		}`, "cycle"},
		"tgff disconnected": {FormatTGFF, `@TASK_GRAPH 0 {
			TASK a TYPE 0
			TASK b TYPE 0
		}`, "not weakly connected"},
		"tgff duplicate task": {FormatTGFF, `@TASK_GRAPH 0 {
			TASK a TYPE 0
			TASK a TYPE 1
		}`, `duplicate TASK name "a"`},
		"tgff duplicate arc": {FormatTGFF, `@TASK_GRAPH 0 {
			TASK a TYPE 0
			TASK b TYPE 0
			ARC e0 FROM a TO b TYPE 0
			ARC e1 FROM a TO b TYPE 0
		}`, "duplicates ARC"},
		"tgff dangling arc": {FormatTGFF, `@TASK_GRAPH 0 {
			TASK a TYPE 0
			ARC e0 FROM a TO ghost TYPE 0
		}`, `undefined task "ghost"`},
		"tgff missing table entry": {FormatTGFF, `@TASK_GRAPH 0 {
			TASK a TYPE 3
		}
		@WCET 0 {
			0 1000
		}`, "no entry for TYPE 3"},
		"tgff two graphs": {FormatTGFF, `@TASK_GRAPH 0 {
			TASK a TYPE 0
		}
		@TASK_GRAPH 1 {
			TASK b TYPE 0
		}`, "more than one"},

		"dot cyclic": {FormatDOT, `digraph c {
			a -> b;
			b -> a;
		}`, "cycle"},
		"dot disconnected": {FormatDOT, `digraph d {
			a -> b;
			c -> e;
		}`, "not weakly connected"},
		"dot duplicate node": {FormatDOT, `digraph d {
			a [cycles=10];
			a [cycles=20];
			a -> b;
		}`, "duplicate node statement"},
		"dot duplicate edge": {FormatDOT, `digraph d {
			a -> b;
			a -> b;
		}`, "duplicate edge"},
		"dot undirected":        {FormatDOT, `graph g { a -- b; }`, "'->'"},
		"dot undirected header": {FormatDOT, `graph g { a; }`, "digraph"},
		"dot subgraph":          {FormatDOT, `digraph g { subgraph s { a -> b; } }`, "subgraph"},
		"dot self edge":         {FormatDOT, `digraph g { a -> a; }`, "self edge"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ParseBytes(tc.format, []byte(tc.doc))
			if err == nil {
				t.Fatalf("accepted invalid %s input", tc.format)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the problem (want substring %q)", err, tc.want)
			}
		})
	}
}

// TestValidateGraphAcceptsNativeWorkloads guards against the ingestion
// contract rejecting the graphs the engine itself generates. The §V random
// generator occasionally leaves a task with no dependents and no dependents
// of its own (so some seeds are legitimately disconnected and stay
// engine-only workloads); the pinned seeds below are weakly connected.
func TestValidateGraphAcceptsNativeWorkloads(t *testing.T) {
	graphs := []*taskgraph.Graph{taskgraph.MPEG2(), taskgraph.Fig8()}
	for _, seed := range []int64{1, 2, 3, 4, 6, 7, 8, 9} {
		graphs = append(graphs, taskgraph.MustRandom(taskgraph.DefaultRandomConfig(40), seed))
	}
	for _, g := range graphs {
		if err := ValidateGraph(g); err != nil {
			t.Errorf("ValidateGraph(%s): %v", g.Name(), err)
		}
	}
}
