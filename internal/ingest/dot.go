package ingest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"seadopt/internal/registers"
	"seadopt/internal/taskgraph"
)

// dotNode is one declared or referenced node of a DOT digraph.
type dotNode struct {
	id       string
	name     string // display name (label's first line, else the id)
	cycles   int64  // 0 = not specified
	regbits  int64  // 0 = not specified
	explicit bool   // appeared as an explicit node statement
}

// parseDOT parses a Graphviz digraph into a task graph. The supported
// subset is node statements, edge chains (a -> b -> c) and attribute lists;
// graph/node/edge default-attribute statements and top-level key=value
// assignments are ignored, and subgraphs are rejected. Computation cost
// comes from a node's `cycles` attribute or a "<n> cyc" label line
// (the form Graph.DOT renders), communication cost from an edge's `cycles`
// attribute or a numeric label. See the package comment for the defaults
// when neither is present.
func parseDOT(data []byte) (*taskgraph.Graph, error) {
	toks, err := dotTokenize(string(data))
	if err != nil {
		return nil, err
	}
	p := &dotParser{toks: toks}

	// Header: [strict] digraph [name] {
	if p.peek() == "strict" {
		p.next()
	}
	switch p.peek() {
	case "digraph":
		p.next()
	case "graph":
		return nil, fmt.Errorf("ingest: dot: undirected graphs are not task graphs; use digraph")
	default:
		return nil, fmt.Errorf("ingest: dot: expected 'digraph', got %q", p.peek())
	}
	graphName := "dot"
	if p.peek() != "{" {
		graphName = dotUnquote(p.next())
	}
	if tok := p.next(); tok != "{" {
		return nil, fmt.Errorf("ingest: dot: expected '{' after digraph header, got %q", tok)
	}

	var (
		order []string
		nodes = make(map[string]*dotNode)
	)
	type dotEdge struct {
		from, to string
		cycles   int64
	}
	var edges []dotEdge
	edgeSeen := make(map[[2]string]bool)

	touch := func(id string) *dotNode {
		n, ok := nodes[id]
		if !ok {
			n = &dotNode{id: id, name: dotUnquote(id)}
			nodes[id] = n
			order = append(order, id)
		}
		return n
	}

	for {
		tok := p.peek()
		switch tok {
		case "":
			return nil, fmt.Errorf("ingest: dot: unexpected end of input (missing '}')")
		case "}":
			p.next()
			goto parsed
		case ";", ",":
			p.next()
			continue
		case "subgraph", "{":
			return nil, fmt.Errorf("ingest: dot: subgraphs are not supported; flatten the graph to plain node and edge statements")
		}
		id := p.next()
		// Top-level key=value (rankdir=TB etc.): skip.
		if p.peek() == "=" {
			p.next()
			if v := p.next(); v == "" {
				return nil, fmt.Errorf("ingest: dot: dangling '=' after %q", id)
			}
			continue
		}
		// graph/node/edge default-attribute statements: skip the list.
		lower := strings.ToLower(id)
		if (lower == "graph" || lower == "node" || lower == "edge") && p.peek() == "[" {
			if _, err := p.attrList(); err != nil {
				return nil, err
			}
			continue
		}
		// Node statement or edge chain.
		chain := []string{id}
		for p.peek() == "->" {
			p.next()
			nid := p.next()
			switch nid {
			case "", ";", "}", "[":
				return nil, fmt.Errorf("ingest: dot: edge from %q has no target node", chain[len(chain)-1])
			}
			chain = append(chain, nid)
		}
		var attrs map[string]string
		if p.peek() == "[" {
			if attrs, err = p.attrList(); err != nil {
				return nil, err
			}
		}
		if len(chain) == 1 {
			n := touch(id)
			if n.explicit && len(attrs) > 0 {
				return nil, fmt.Errorf("ingest: dot: duplicate node statement for %q; merge its attributes into one statement", dotUnquote(id))
			}
			if len(attrs) > 0 {
				n.explicit = true
			}
			if err := n.apply(attrs); err != nil {
				return nil, err
			}
			continue
		}
		cycles := int64(0)
		if v, ok := attrs["cycles"]; ok {
			c, err := strconv.ParseInt(dotUnquote(v), 10, 64)
			if err != nil || c < 0 {
				return nil, fmt.Errorf("ingest: dot: edge %s -> %s has bad cycles=%q (want a non-negative integer)",
					dotUnquote(chain[0]), dotUnquote(chain[1]), v)
			}
			cycles = c
		} else if v, ok := attrs["label"]; ok {
			if c, err := strconv.ParseInt(strings.TrimSpace(dotUnquote(v)), 10, 64); err == nil && c >= 0 {
				cycles = c
			}
		}
		for i := 0; i+1 < len(chain); i++ {
			from, to := chain[i], chain[i+1]
			touch(from)
			touch(to)
			key := [2]string{from, to}
			if edgeSeen[key] {
				return nil, fmt.Errorf("ingest: dot: duplicate edge %s -> %s", dotUnquote(from), dotUnquote(to))
			}
			edgeSeen[key] = true
			edges = append(edges, dotEdge{from: from, to: to, cycles: cycles})
		}
	}
parsed:
	if tok := p.peek(); tok != "" {
		return nil, fmt.Errorf("ingest: dot: trailing content %q after closing '}'", tok)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("ingest: dot: digraph %q declares no nodes", graphName)
	}

	inv := registers.NewInventory()
	b := taskgraph.NewBuilder(graphName, inv)
	ids := make(map[string]taskgraph.TaskID, len(order))
	seenNames := make(map[string]string, len(order))
	for _, id := range order {
		n := nodes[id]
		if prev, dup := seenNames[n.name]; dup {
			return nil, fmt.Errorf("ingest: dot: nodes %q and %q both resolve to task name %q", prev, n.id, n.name)
		}
		seenNames[n.name] = n.id
		cycles := n.cycles
		if cycles == 0 {
			cycles = DefaultComputeCycles
		}
		bits := n.regbits
		if bits == 0 {
			bits = DefaultRegisterBits
		}
		regID := "loc_" + n.name
		if err := inv.Add(regID, bits); err != nil {
			return nil, fmt.Errorf("ingest: dot node %q: %w", n.name, err)
		}
		ids[id] = b.AddTask(n.name, cycles, regID)
	}
	for _, e := range edges {
		b.AddEdge(ids[e.from], ids[e.to], e.cycles)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("ingest: dot: %w", err)
	}
	return g, nil
}

// dotCycLabel matches the "<n> cyc" cost line Graph.DOT writes into labels.
var dotCycLabel = regexp.MustCompile(`^([0-9]+)\s*cyc$`)

// apply folds a node statement's attribute list into the node.
func (n *dotNode) apply(attrs map[string]string) error {
	if v, ok := attrs["label"]; ok {
		// Labels use literal \n (and \l/\r) separators; Graph.DOT writes
		// "Name\nN cyc".
		parts := strings.FieldsFunc(dotUnquote(v), func(r rune) bool { return r == '\n' })
		for _, sep := range []string{`\n`, `\l`, `\r`} {
			var next []string
			for _, p := range parts {
				next = append(next, strings.Split(p, sep)...)
			}
			parts = next
		}
		for i, part := range parts {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			if m := dotCycLabel.FindStringSubmatch(part); m != nil {
				c, err := strconv.ParseInt(m[1], 10, 64)
				if err != nil {
					return fmt.Errorf("ingest: dot: node %q label cost %q overflows", n.id, part)
				}
				if n.cycles == 0 {
					n.cycles = c
				}
			} else if i == 0 {
				n.name = part
			}
		}
	}
	if v, ok := attrs["cycles"]; ok {
		c, err := strconv.ParseInt(dotUnquote(v), 10, 64)
		if err != nil || c <= 0 {
			return fmt.Errorf("ingest: dot: node %q has bad cycles=%q (want a positive integer)", n.id, v)
		}
		n.cycles = c
	}
	if v, ok := attrs["regbits"]; ok {
		c, err := strconv.ParseInt(dotUnquote(v), 10, 64)
		if err != nil || c <= 0 {
			return fmt.Errorf("ingest: dot: node %q has bad regbits=%q (want a positive integer)", n.id, v)
		}
		n.regbits = c
	}
	return nil
}

// dotParser walks the token stream.
type dotParser struct {
	toks []string
	pos  int
}

func (p *dotParser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *dotParser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

// attrList parses "[ k=v, k=v, ... ]" (the leading '[' is still pending).
func (p *dotParser) attrList() (map[string]string, error) {
	if tok := p.next(); tok != "[" {
		return nil, fmt.Errorf("ingest: dot: expected '[', got %q", tok)
	}
	attrs := make(map[string]string)
	for {
		tok := p.next()
		switch tok {
		case "]":
			return attrs, nil
		case ",", ";":
			continue
		case "":
			return nil, fmt.Errorf("ingest: dot: unterminated attribute list")
		}
		key := strings.ToLower(dotUnquote(tok))
		if eq := p.next(); eq != "=" {
			return nil, fmt.Errorf("ingest: dot: attribute %q is missing '=' (got %q)", key, eq)
		}
		val := p.next()
		if val == "" || val == "]" || val == "," {
			return nil, fmt.Errorf("ingest: dot: attribute %q has no value", key)
		}
		attrs[key] = val
	}
}

// dotTokenize splits DOT source into identifiers, quoted strings (kept
// quoted so consumers can distinguish them) and punctuation, dropping //,
// /* */ and # comments.
func dotTokenize(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("ingest: dot: unterminated /* comment")
			}
			i += 2 + end + 2
		case c == '"':
			j := i + 1
			for j < len(src) {
				if src[j] == '\\' && j+1 < len(src) {
					j += 2
					continue
				}
				if src[j] == '"' {
					break
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("ingest: dot: unterminated string literal")
			}
			toks = append(toks, src[i:j+1])
			i = j + 1
		case c == '-' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, "->")
			i += 2
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			return nil, fmt.Errorf("ingest: dot: undirected edge '--' is not a task dependency; use '->'")
		case strings.ContainsRune("{}[]=;,", rune(c)):
			toks = append(toks, string(c))
			i++
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\r\n{}[]=;,\"#", rune(src[j])) &&
				!(src[j] == '-' && j+1 < len(src) && (src[j+1] == '>' || src[j+1] == '-')) &&
				!(src[j] == '/' && j+1 < len(src) && (src[j+1] == '/' || src[j+1] == '*')) {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("ingest: dot: unexpected character %q", c)
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks, nil
}

// dotUnquote strips the quotes of a quoted token and resolves \" and \\
// escapes; bare identifiers pass through.
func dotUnquote(tok string) string {
	if len(tok) < 2 || tok[0] != '"' {
		return tok
	}
	body := tok[1 : len(tok)-1]
	var sb strings.Builder
	for i := 0; i < len(body); i++ {
		if body[i] == '\\' && i+1 < len(body) && (body[i+1] == '"' || body[i+1] == '\\') {
			i++
		}
		sb.WriteByte(body[i])
	}
	return sb.String()
}
