package sched

import (
	"math/rand"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
)

func TestValidateAcceptsSchedulerOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	graphs := []*taskgraph.Graph{
		taskgraph.MPEG2(),
		taskgraph.Fig8(),
		taskgraph.MustRandom(taskgraph.DefaultRandomConfig(35), 6),
	}
	for _, g := range graphs {
		for trial := 0; trial < 10; trial++ {
			cores := 2 + rng.Intn(4)
			p := plat(cores)
			m := RandomMapping(rng, g.N(), cores)
			scaling := make([]int, cores)
			for i := range scaling {
				scaling[i] = 1 + rng.Intn(3)
			}
			s, err := ListSchedule(g, p, m, scaling)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s trial %d: %v", g.Name(), trial, err)
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := taskgraph.Fig8()
	p := plat(2)
	s, err := ListSchedule(g, p, RoundRobin(g.N(), 2), []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Violate precedence: drag the sink task to time zero.
	last := g.Leaves()[0]
	orig := s.Slots[last]
	s.Slots[last].StartSec = 0
	s.Slots[last].EndSec = orig.EndSec - orig.StartSec
	if err := s.Validate(); err == nil {
		t.Error("corrupted schedule validated")
	}
	s.Slots[last] = orig
	if err := s.Validate(); err != nil {
		t.Fatalf("restored schedule invalid: %v", err)
	}
	// Wrong core.
	s.Slots[0].Core = 1 - s.Slots[0].Core
	if err := s.Validate(); err == nil {
		t.Error("core mismatch validated")
	}
}

func TestSlackAndCriticalTasks(t *testing.T) {
	g := taskgraph.Fig8()
	p := plat(3)
	s, err := ListSchedule(g, p, Mapping{0, 1, 0, 0, 2, 0}, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	slack := s.Slack()
	crit := s.CriticalTasks()
	if len(crit) == 0 {
		t.Fatal("no critical tasks found")
	}
	// The finishing task always has zero slack.
	var lastTask taskgraph.TaskID
	var lastEnd float64
	for _, slot := range s.Slots {
		if slot.EndSec > lastEnd {
			lastEnd = slot.EndSec
			lastTask = slot.Task
		}
	}
	if slack[lastTask] > 1e-12 {
		t.Errorf("finishing task %d has slack %v", lastTask, slack[lastTask])
	}
	found := false
	for _, c := range crit {
		if taskgraph.TaskID(c) == lastTask {
			found = true
		}
	}
	if !found {
		t.Error("finishing task not reported critical")
	}
	for t2, v := range slack {
		if v < 0 {
			t.Errorf("task %d has negative slack %v", t2, v)
		}
	}
}

func TestLoadImbalanceAndComm(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	balanced, err := ListSchedule(g, p, RoundRobin(g.N(), 4), []int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	serialish, err := ListSchedule(g, p, Mapping{0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3}, []int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if serialish.LoadImbalance() <= balanced.LoadImbalance() {
		t.Errorf("serial-ish imbalance %v not above round-robin %v",
			serialish.LoadImbalance(), balanced.LoadImbalance())
	}
	// Round-robin cuts every edge of the chain; the clustered mapping cuts 3.
	if balanced.CommSeconds() <= serialish.CommSeconds() {
		t.Errorf("round-robin comm %v not above clustered %v",
			balanced.CommSeconds(), serialish.CommSeconds())
	}
	// Same-core mapping has zero comm.
	mono, err := ListSchedule(g, p, NewMapping(g.N()), []int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if mono.CommSeconds() != 0 {
		t.Errorf("single-core comm = %v, want 0", mono.CommSeconds())
	}
}

func TestValidateDifferentClockDomains(t *testing.T) {
	// Cross-core comm at mixed scalings must validate (billed at the slower
	// endpoint) — regression guard for the clock-domain billing rule.
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(25), 12)
	p := arch.MustNewPlatform(3, arch.ARM7Levels3())
	for _, scaling := range [][]int{{1, 2, 3}, {3, 2, 1}, {2, 2, 2}, {1, 1, 3}} {
		s, err := ListSchedule(g, p, RoundRobin(g.N(), 3), scaling)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("scaling %v: %v", scaling, err)
		}
	}
}
