package sched

import (
	"math"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/registers"
	"seadopt/internal/taskgraph"
)

// Fabric parameters shared by the tests below: 1 Gbit/s links, 100 ns per
// hop, the default 32 bits per communication cycle. A 50-cycle edge is
// then 1600 bits: ser = 1.6 µs, one hop = 1.7 µs total.
const (
	testBwBps  = 1e9
	testHopSec = 1e-7
)

func busPlat(cores int) *arch.Platform {
	p, err := arch.NewPlatform(cores, arch.ARM7Levels3(), arch.WithInterconnect(arch.Interconnect{
		Topology:      arch.TopologyBus,
		BandwidthBps:  testBwBps,
		HopLatencySec: testHopSec,
	}))
	if err != nil {
		panic(err)
	}
	return p
}

func meshPlat(cores, width int) *arch.Platform {
	p, err := arch.NewPlatform(cores, arch.ARM7Levels3(), arch.WithInterconnect(arch.Interconnect{
		Topology:      arch.TopologyMesh,
		BandwidthBps:  testBwBps,
		HopLatencySec: testHopSec,
		MeshWidth:     width,
	}))
	if err != nil {
		panic(err)
	}
	return p
}

// fork returns a -> {b, c} with 100-cycle tasks and 50-cycle edges.
func fork(t *testing.T) *taskgraph.Graph {
	t.Helper()
	inv := registers.NewInventory()
	inv.MustAdd("r", 128)
	b := taskgraph.NewBuilder("fork", inv)
	a := b.AddTask("a", 100, "r")
	b1 := b.AddTask("b", 100, "r")
	c := b.AddTask("c", 100, "r")
	b.AddEdge(a, b1, 50)
	b.AddEdge(a, c, 50)
	return b.MustBuild()
}

func approx(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-15+1e-12*math.Abs(want) {
		t.Fatalf("%s = %.15g, want %.15g", what, got, want)
	}
}

func TestInterconnectUncontendedTransfer(t *testing.T) {
	g := chain(t)
	p := busPlat(2)
	s, err := ListSchedule(g, p, Mapping{0, 1, 0}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	dur := 100 / 200e6
	xfer := testHopSec + 50*arch.DefaultBitsPerCycle/testBwBps
	approx(t, "t1 start", s.Slots[1].StartSec, dur+xfer)
	approx(t, "t2 start", s.Slots[2].StartSec, 2*dur+2*xfer)
	approx(t, "makespan", s.MakespanSeconds(), 3*dur+2*xfer)
	approx(t, "comm delay", s.CommDelaySeconds(), 2*xfer)

	// The fabric shapes timing only: eq. (7) billing matches the ideal
	// platform's bit for bit.
	ideal, err := ListSchedule(g, plat(2), Mapping{0, 1, 0}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		if s.BusyCycles(c) != ideal.BusyCycles(c) {
			t.Fatalf("core %d bills %d cycles under the fabric, %d ideal",
				c, s.BusyCycles(c), ideal.BusyCycles(c))
		}
	}
}

func TestBusContentionSerializes(t *testing.T) {
	g := fork(t)
	p := busPlat(3)
	s, err := ListSchedule(g, p, Mapping{0, 1, 2}, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	dur := 100 / 200e6
	ser := 50 * arch.DefaultBitsPerCycle / testBwBps
	// Both tokens leave when a completes; the single bus link serializes
	// them in issue order (a's successor edges in graph order: b first).
	approx(t, "b start", s.Slots[1].StartSec, dur+testHopSec+ser)
	approx(t, "c start", s.Slots[2].StartSec, dur+ser+testHopSec+ser)
	approx(t, "comm delay", s.CommDelaySeconds(), (testHopSec+ser)+(ser+testHopSec+ser))

	// Determinism: the same mapping re-scheduled is bit-identical.
	again, err := ListSchedule(g, p, Mapping{0, 1, 2}, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Slots {
		if s.Slots[i] != again.Slots[i] {
			t.Fatalf("slot %d differs across runs: %+v vs %+v", i, s.Slots[i], again.Slots[i])
		}
	}
}

func TestMeshParallelLinksAvoidBusContention(t *testing.T) {
	g := fork(t)
	// 2×2 mesh: core 0 feeds core 1 (east link) and core 2 (south link) —
	// disjoint directed links, so both transfers stream concurrently.
	s, err := ListSchedule(g, meshPlat(4, 2), Mapping{0, 1, 2}, []int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	dur := 100 / 200e6
	xfer := testHopSec + 50*arch.DefaultBitsPerCycle/testBwBps
	approx(t, "b start", s.Slots[1].StartSec, dur+xfer)
	approx(t, "c start", s.Slots[2].StartSec, dur+xfer)

	// The same workload on a bus is strictly slower: shared-link queuing.
	bus, err := ListSchedule(g, busPlat(4), Mapping{0, 1, 2}, []int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if bus.MakespanSeconds() <= s.MakespanSeconds() {
		t.Fatalf("bus makespan %v not above mesh %v", bus.MakespanSeconds(), s.MakespanSeconds())
	}
}

func TestMultiHopLatency(t *testing.T) {
	g := chain(t)
	// 3×1 row mesh (width 3): core 0 -> core 2 is two hops.
	s, err := ListSchedule(g, meshPlat(3, 3), Mapping{0, 2, 2}, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	dur := 100 / 200e6
	xfer2 := 2*testHopSec + 50*arch.DefaultBitsPerCycle/testBwBps
	approx(t, "t1 start", s.Slots[1].StartSec, dur+xfer2)
}

func TestValidateCatchesBillingCorruption(t *testing.T) {
	g := chain(t)
	s, err := ListSchedule(g, plat(2), Mapping{0, 1, 0}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := s.Clone()
	bad.busyCycles[0]++
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted corrupted busy-cycle billing")
	}
	bad2 := s.Clone()
	bad2.busySec[1] *= 1.5
	if err := bad2.Validate(); err == nil {
		t.Fatal("Validate accepted corrupted busy seconds")
	}
}

func TestCommSecondsMatchesBilling(t *testing.T) {
	g := chain(t)
	s, err := ListSchedule(g, plat(2), Mapping{0, 1, 0}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// CommSeconds is the communication share of the summed busy time:
	// Σ_c BusySeconds(c) − Σ_t cycles_t / f_mapped(t).
	var taskSec float64
	for t2 := 0; t2 < g.N(); t2++ {
		taskSec += float64(g.Task(taskgraph.TaskID(t2)).Cycles) / s.FreqHz(s.Mapping[t2])
	}
	var busy float64
	for c := 0; c < s.Cores(); c++ {
		busy += s.BusySeconds(c)
	}
	approx(t, "CommSeconds", s.CommSeconds(), busy-taskSec)
	if s.CommDelaySeconds() <= 0 {
		t.Fatal("cross-core schedule reports zero realized comm delay")
	}
}
