package sched

import (
	"math/rand"
	"strings"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/registers"
	"seadopt/internal/taskgraph"
)

func plat(cores int) *arch.Platform {
	return arch.MustNewPlatform(cores, arch.ARM7Levels3())
}

// chain returns t0 -> t1 -> t2 with 100-cycle tasks and 50-cycle edges.
func chain(t *testing.T) *taskgraph.Graph {
	t.Helper()
	inv := registers.NewInventory()
	inv.MustAdd("r", 128)
	b := taskgraph.NewBuilder("chain", inv)
	t0 := b.AddTask("t0", 100, "r")
	t1 := b.AddTask("t1", 100, "r")
	t2 := b.AddTask("t2", 100, "r")
	b.AddEdge(t0, t1, 50)
	b.AddEdge(t1, t2, 50)
	return b.MustBuild()
}

func TestMappingHelpers(t *testing.T) {
	m := RoundRobin(5, 2)
	if m[0] != 0 || m[1] != 1 || m[4] != 0 {
		t.Errorf("RoundRobin = %v", m)
	}
	if m.UsedCores(2) != 2 {
		t.Errorf("UsedCores = %d", m.UsedCores(2))
	}
	ct := m.CoreTasks(2)
	if len(ct[0]) != 3 || len(ct[1]) != 2 {
		t.Errorf("CoreTasks = %v", ct)
	}
	c := m.Clone()
	c[0] = 1
	if m[0] != 0 {
		t.Error("Clone not independent")
	}
	g := chain(t)
	if err := NewMapping(3).Validate(g, 2); err != nil {
		t.Errorf("valid mapping rejected: %v", err)
	}
	if err := NewMapping(2).Validate(g, 2); err == nil {
		t.Error("short mapping accepted")
	}
	if err := (Mapping{0, 0, 5}).Validate(g, 2); err == nil {
		t.Error("out-of-range core accepted")
	}
	rng := rand.New(rand.NewSource(1))
	rm := RandomMapping(rng, 100, 4)
	if err := rm.Validate(taskgraph.MustRandom(taskgraph.DefaultRandomConfig(100), 1), 4); err != nil {
		t.Errorf("random mapping invalid: %v", err)
	}
}

func TestListScheduleSameCoreNoComm(t *testing.T) {
	g := chain(t)
	p := plat(2)
	s, err := ListSchedule(g, p, Mapping{0, 0, 0}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := p.MustLevel(1).FreqHz()
	want := 300.0 / f // no communication on-core
	if got := s.MakespanSeconds(); !near(got, want) {
		t.Errorf("makespan = %v, want %v", got, want)
	}
	if s.BusyCycles(0) != 300 || s.BusyCycles(1) != 0 {
		t.Errorf("busy cycles = %d,%d", s.BusyCycles(0), s.BusyCycles(1))
	}
}

func TestListScheduleCrossCoreComm(t *testing.T) {
	g := chain(t)
	p := plat(2)
	s, err := ListSchedule(g, p, Mapping{0, 1, 0}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := p.MustLevel(1).FreqHz()
	// t0 on c0 [0,100], comm 50, t1 on c1 [150,250], comm 50, t2 on c0 [300,400].
	want := 400.0 / f
	if got := s.MakespanSeconds(); !near(got, want) {
		t.Errorf("makespan = %v, want %v", got, want)
	}
	// Eq. (7): both endpoints pay each cross edge.
	if s.BusyCycles(0) != 100+50+50+100 {
		t.Errorf("busy(0) = %d, want 300", s.BusyCycles(0))
	}
	if s.BusyCycles(1) != 100+50+50 {
		t.Errorf("busy(1) = %d, want 200", s.BusyCycles(1))
	}
	if s.TotalBusyCycles() != 500 {
		t.Errorf("total busy = %d", s.TotalBusyCycles())
	}
}

func TestCommBilledAtSlowerClock(t *testing.T) {
	g := chain(t)
	p := plat(2)
	// Core 1 runs at s=2 (100 MHz); cross edges must use the slower clock.
	s, err := ListSchedule(g, p, Mapping{0, 1, 0}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	f1 := p.MustLevel(1).FreqHz()
	f2 := p.MustLevel(2).FreqHz()
	// t0: 100/f1. comm: 50/f2 (slower endpoint). t1: 100/f2. comm: 50/f2. t2: 100/f1.
	want := 100/f1 + 50/f2 + 100/f2 + 50/f2 + 100/f1
	if got := s.MakespanSeconds(); !near(got, want) {
		t.Errorf("makespan = %v, want %v", got, want)
	}
}

func TestPrecedenceRespected(t *testing.T) {
	// Property over random graphs/mappings/scalings: no task starts before
	// every predecessor's finish (+ comm when cross-core).
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(40)
		g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(n), rng.Int63())
		cores := 2 + rng.Intn(5)
		p := plat(cores)
		m := RandomMapping(rng, n, cores)
		scaling := make([]int, cores)
		for i := range scaling {
			scaling[i] = 1 + rng.Intn(3)
		}
		s, err := ListSchedule(g, p, m, scaling)
		if err != nil {
			t.Fatal(err)
		}
		freq := make([]float64, cores)
		for i, sc := range scaling {
			freq[i] = p.MustLevel(sc).FreqHz()
		}
		for _, e := range g.Edges() {
			pre, post := s.Slots[e.From], s.Slots[e.To]
			minStart := pre.EndSec
			if m[e.From] != m[e.To] {
				fSlow := freq[m[e.From]]
				if freq[m[e.To]] < fSlow {
					fSlow = freq[m[e.To]]
				}
				minStart += float64(e.Cycles) / fSlow
			}
			if post.StartSec < minStart-1e-12 {
				t.Fatalf("trial %d: edge %d->%d violated: start %v < %v",
					trial, e.From, e.To, post.StartSec, minStart)
			}
		}
		// No overlap on any core.
		perCore := make(map[int][]Slot)
		for _, slot := range s.Slots {
			perCore[slot.Core] = append(perCore[slot.Core], slot)
		}
		for c, slots := range perCore {
			for i := range slots {
				for j := i + 1; j < len(slots); j++ {
					a, b := slots[i], slots[j]
					if a.StartSec < b.EndSec-1e-12 && b.StartSec < a.EndSec-1e-12 {
						t.Fatalf("trial %d: core %d overlap: %+v vs %+v", trial, c, a, b)
					}
				}
			}
		}
		// Makespan equals the max finish time.
		maxEnd := 0.0
		for _, slot := range s.Slots {
			if slot.EndSec > maxEnd {
				maxEnd = slot.EndSec
			}
		}
		if !near(maxEnd, s.MakespanSeconds()) {
			t.Fatalf("trial %d: makespan %v != max end %v", trial, s.MakespanSeconds(), maxEnd)
		}
	}
}

func TestMakespanLowerBounds(t *testing.T) {
	// Makespan must be >= critical path at the fastest clock and >= the
	// bottleneck core's busy compute time.
	g := taskgraph.MPEG2()
	p := plat(4)
	m := RoundRobin(g.N(), 4)
	s, err := ListSchedule(g, p, m, []int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := p.MustLevel(1).FreqHz()
	cp := float64(g.CriticalPathCycles()) / f
	if s.MakespanSeconds() < cp-1e-12 {
		t.Errorf("makespan %v below critical path %v", s.MakespanSeconds(), cp)
	}
	if s.MakespanSeconds() < s.MaxBusySeconds()-1e-9 {
		// Busy includes comm billed to both sides, so compare softly.
		t.Logf("makespan %v, max busy %v", s.MakespanSeconds(), s.MaxBusySeconds())
	}
}

func TestPipelinedMakespan(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	m := RoundRobin(g.N(), 4)
	s, err := ListSchedule(g, p, m, []int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	one := s.PipelinedMakespanSeconds(1)
	if !near(one, s.MakespanSeconds()) {
		t.Errorf("1-iteration pipeline %v != makespan %v", one, s.MakespanSeconds())
	}
	many := s.PipelinedMakespanSeconds(taskgraph.MPEG2Frames)
	if many > s.MakespanSeconds() {
		t.Errorf("pipelining increased makespan: %v > %v", many, s.MakespanSeconds())
	}
	if many < s.MaxBusySeconds()-1e-12 {
		t.Errorf("pipelined makespan %v below bottleneck %v", many, s.MaxBusySeconds())
	}
}

func TestUtilization(t *testing.T) {
	g := chain(t)
	p := plat(2)
	s, err := ListSchedule(g, p, Mapping{0, 0, 0}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	u := s.Utilization(1)
	if !near(u[0], 1.0) {
		t.Errorf("core 0 utilization = %v, want 1", u[0])
	}
	if u[1] != 0 {
		t.Errorf("idle core utilization = %v, want 0", u[1])
	}
}

func TestListScheduleErrors(t *testing.T) {
	g := chain(t)
	p := plat(2)
	if _, err := ListSchedule(g, p, Mapping{0, 0}, []int{1, 1}); err == nil {
		t.Error("short mapping accepted")
	}
	if _, err := ListSchedule(g, p, Mapping{0, 0, 0}, []int{1}); err == nil {
		t.Error("short scaling accepted")
	}
	if _, err := ListSchedule(g, p, Mapping{0, 0, 0}, []int{1, 9}); err == nil {
		t.Error("bad scaling accepted")
	}
}

func TestScalingSlowsSchedule(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	m := RoundRobin(g.N(), 4)
	fast, err := ListSchedule(g, p, m, []int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := ListSchedule(g, p, m, []int{3, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if slow.MakespanSeconds() <= fast.MakespanSeconds() {
		t.Errorf("scaling down did not slow schedule: %v <= %v",
			slow.MakespanSeconds(), fast.MakespanSeconds())
	}
	// Cycle counts are frequency-independent.
	for c := 0; c < 4; c++ {
		if fast.BusyCycles(c) != slow.BusyCycles(c) {
			t.Errorf("core %d busy cycles changed with scaling: %d vs %d",
				c, fast.BusyCycles(c), slow.BusyCycles(c))
		}
	}
}

func TestGantt(t *testing.T) {
	g := chain(t)
	p := plat(2)
	s, err := ListSchedule(g, p, Mapping{0, 1, 0}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	out := s.Gantt(60)
	if !strings.Contains(out, "core 0") || !strings.Contains(out, "core 1") {
		t.Errorf("Gantt missing core rows:\n%s", out)
	}
	if !strings.Contains(out, "makespan") {
		t.Errorf("Gantt missing makespan:\n%s", out)
	}
}

func near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+absf(a)+absf(b))
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
