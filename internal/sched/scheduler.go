package sched

import (
	"fmt"

	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
)

// agendaEvent is one entry of the scheduler's time-ordered agenda: either a
// task completion or a cross-core token arrival.
type agendaEvent struct {
	at     float64
	seq    int
	isStop bool             // task completion (vs token arrival)
	task   taskgraph.TaskID // completing task or token target
}

// agendaLess is the agenda's strict total order: earliest timestamp first,
// insertion sequence breaking ties. seq is unique, so the minimum is unique
// and any correct priority queue yields the same event order — the agenda
// heap below pops events in exactly the sequence a linear min-scan would.
func agendaLess(a, b agendaEvent) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Scheduler is a reusable list scheduler pinned to a (graph, platform) pair.
// Bind selects the per-core scaling vector; Schedule then list-schedules any
// mapping without allocating: every internal buffer (agenda, ready pools,
// predecessor counts) and the output Schedule itself are reused across calls.
//
// The returned *Schedule is BORROWED — it stays valid only until the next
// Schedule or Bind call on this Scheduler. Callers that retain a schedule
// across calls must Clone it. The one-shot ListSchedule wrapper keeps the
// old allocate-per-call contract for code outside the hot path.
//
// A Scheduler is not safe for concurrent use; the exploration engine gives
// each worker its own (via metrics.Evaluator).
type Scheduler struct {
	g   *taskgraph.Graph
	p   *arch.Platform
	bl  []int64            // b-level priorities, graph-constant
	icn *arch.Interconnect // nil = ideal point-to-point links

	scaling []int
	freq    []float64

	// Scratch reused across Schedule calls. agenda is a binary min-heap
	// ordered by agendaLess. linkBusy tracks, per directed fabric link,
	// when the last reserved transfer drains; linkPath is the routing
	// scratch.
	remainingPreds []int
	agenda         []agendaEvent
	batch          []agendaEvent
	pools          [][]taskgraph.TaskID
	coreBusy       []bool
	touched        []bool
	touchedList    []int
	linkBusy       []float64
	linkPath       []int

	out Schedule
}

// NewScheduler builds a scheduler for g on p. Bind must be called before
// Schedule.
func NewScheduler(g *taskgraph.Graph, p *arch.Platform) *Scheduler {
	n := g.N()
	cores := p.Cores()
	s := &Scheduler{
		g:              g,
		p:              p,
		bl:             g.BLevels(),
		icn:            p.Interconnect(),
		scaling:        make([]int, cores),
		freq:           make([]float64, cores),
		remainingPreds: make([]int, n),
		pools:          make([][]taskgraph.TaskID, cores),
		coreBusy:       make([]bool, cores),
		touched:        make([]bool, cores),
		touchedList:    make([]int, 0, cores),
	}
	if s.icn != nil {
		s.linkBusy = make([]float64, s.icn.NumLinks())
	}
	s.out = Schedule{
		Graph:      g,
		Mapping:    make(Mapping, n),
		Scaling:    s.scaling,
		Slots:      make([]Slot, n),
		busyCycles: make([]int64, cores),
		busySec:    make([]float64, cores),
		freqHz:     s.freq,
		icn:        s.icn,
	}
	return s
}

// transferArrival reserves the fabric links of a src→dst transfer of the
// given communication cycles issued at now, and returns its arrival time.
// Cut-through channel reservation: the transfer starts once every link on
// its path is free of earlier traffic by the time its head word gets there
// (link i is entered i hop-latencies after the start), then holds each
// link for the serialization time bits/bandwidth. Uncontended this is
// exactly hops·HopLatencySec + bits/BandwidthBps; contention only delays
// the start. Transfers are issued while draining agenda events in strict
// (time, seq) order, so reservation order — and therefore who queues
// behind whom — is deterministic.
func (s *Scheduler) transferArrival(src, dst int, cycles int64, now float64) float64 {
	ic := s.icn
	ser := ic.MessageBits(cycles) / ic.BandwidthBps
	lat := ic.HopLatencySec
	s.linkPath = ic.PathLinks(src, dst, s.linkPath[:0])
	start := now
	for i, l := range s.linkPath {
		if t := s.linkBusy[l] - float64(i)*lat; t > start {
			start = t
		}
	}
	for i, l := range s.linkPath {
		s.linkBusy[l] = start + float64(i)*lat + ser
	}
	return start + float64(len(s.linkPath))*lat + ser
}

// Graph returns the pinned task graph.
func (s *Scheduler) Graph() *taskgraph.Graph { return s.g }

// Platform returns the pinned platform.
func (s *Scheduler) Platform() *arch.Platform { return s.p }

// Bind selects the scaling vector for subsequent Schedule calls. It
// invalidates any borrowed Schedule previously returned.
func (s *Scheduler) Bind(scaling []int) error {
	if err := s.p.ValidScaling(scaling); err != nil {
		return err
	}
	copy(s.scaling, scaling)
	for i, lv := range s.scaling {
		s.freq[i] = s.p.MustCoreLevel(i, lv).FreqHz()
	}
	return nil
}

// BindDelta rebinds only the cores whose coefficient differs from the
// currently bound vector, appending their indices to changed (typically a
// reused buffer) and returning the extended slice. It requires a prior
// successful Bind; per-core frequency work is done only for the changed
// cores, so a near-identical successor vector costs O(changed) float math
// (the diff itself is an O(cores) integer scan). Validation happens before
// any state is touched, so on error the binding is unchanged. Like Bind, it
// invalidates any borrowed Schedule.
func (s *Scheduler) BindDelta(next []int, changed []int) ([]int, error) {
	if s.freq[0] == 0 {
		return changed, fmt.Errorf("sched: BindDelta called before Bind")
	}
	if len(next) != len(s.scaling) {
		return changed, fmt.Errorf("sched: scaling vector has %d entries, platform has %d cores", len(next), len(s.scaling))
	}
	for c, v := range next {
		if v == s.scaling[c] {
			continue
		}
		if _, err := s.p.CoreLevel(c, v); err != nil {
			return changed, err
		}
	}
	for c, v := range next {
		if v == s.scaling[c] {
			continue
		}
		s.scaling[c] = v
		s.freq[c] = s.p.MustCoreLevel(c, v).FreqHz()
		changed = append(changed, c)
	}
	return changed, nil
}

// Scaling returns the bound scaling vector. The slice is shared; do not
// mutate.
func (s *Scheduler) Scaling() []int { return s.scaling }

// Schedule list-schedules mapping m at the bound scaling, using exactly the
// dispatch policy of ListSchedule (highest b-level first, TaskID tie break).
// The result is borrowed; see the type comment.
func (s *Scheduler) Schedule(m Mapping) (*Schedule, error) {
	if err := m.Validate(s.g, s.p.Cores()); err != nil {
		return nil, err
	}
	if s.freq[0] == 0 {
		return nil, fmt.Errorf("sched: Schedule called before Bind")
	}
	g, n, cores := s.g, s.g.N(), s.p.Cores()

	// Reset output and scratch state.
	sc := &s.out
	copy(sc.Mapping, m)
	sc.makespan = 0
	sc.commDelaySec = 0
	for i := range s.linkBusy {
		s.linkBusy[i] = 0
	}
	for c := 0; c < cores; c++ {
		sc.busyCycles[c] = 0
		sc.busySec[c] = 0
		s.pools[c] = s.pools[c][:0]
		s.coreBusy[c] = false
		s.touched[c] = false
	}
	for t := 0; t < n; t++ {
		s.remainingPreds[t] = len(g.Preds(taskgraph.TaskID(t)))
	}
	s.agenda = s.agenda[:0]

	seq := 0
	push := func(at float64, isStop bool, task taskgraph.TaskID) {
		s.heapPush(agendaEvent{at, seq, isStop, task})
		seq++
	}

	scheduledCount := 0
	dispatch := func(core int, now float64) {
		if s.coreBusy[core] || len(s.pools[core]) == 0 {
			return
		}
		best := 0
		for i := 1; i < len(s.pools[core]); i++ {
			a, b := s.pools[core][i], s.pools[core][best]
			if s.bl[a] > s.bl[b] || (s.bl[a] == s.bl[b] && a < b) {
				best = i
			}
		}
		t := s.pools[core][best]
		s.pools[core] = append(s.pools[core][:best], s.pools[core][best+1:]...)
		dur := float64(g.Task(t).Cycles) / s.freq[core]
		sc.Slots[t] = Slot{Task: t, Core: core, StartSec: now, EndSec: now + dur}
		s.coreBusy[core] = true
		scheduledCount++
		push(now+dur, true, t)
	}

	// Seed: root tasks are data-ready at time zero.
	for t := 0; t < n; t++ {
		if s.remainingPreds[t] == 0 {
			s.pools[m[t]] = append(s.pools[m[t]], taskgraph.TaskID(t))
		}
	}
	for c := range s.pools {
		dispatch(c, 0)
	}

	touch := func(core int) {
		if !s.touched[core] {
			s.touched[core] = true
			s.touchedList = append(s.touchedList, core)
		}
	}

	for len(s.agenda) > 0 {
		// Batch all events at the same timestamp before dispatching so a
		// completion and a token arrival at time t see each other. Heap pops
		// arrive in (at, seq) order, so the batch is seq-ascending within
		// the timestamp — the same order the old linear min-scan produced.
		now := s.agenda[0].at
		s.batch = s.batch[:0]
		for len(s.agenda) > 0 && s.agenda[0].at == now {
			s.batch = append(s.batch, s.heapPop())
		}
		s.touchedList = s.touchedList[:0]
		for _, e := range s.batch {
			if e.isStop {
				t := e.task
				core := m[t]
				s.coreBusy[core] = false
				touch(core)
				if now > sc.makespan {
					sc.makespan = now
				}
				for _, edge := range g.Succs(t) {
					if m[edge.To] == core || edge.Cycles == 0 {
						s.remainingPreds[edge.To]--
						if s.remainingPreds[edge.To] == 0 {
							s.pools[m[edge.To]] = append(s.pools[m[edge.To]], edge.To)
							touch(m[edge.To])
						}
						continue
					}
					if s.icn != nil {
						// Cross-core token rides the shared fabric: reserve
						// the route's links and deliver at the (possibly
						// contended) arrival time.
						arrive := s.transferArrival(core, m[edge.To], edge.Cycles, now)
						sc.commDelaySec += arrive - now
						push(arrive, false, edge.To)
						continue
					}
					// Ideal dedicated link: the token costs its cycle count
					// at the slower endpoint's clock.
					fSlow := s.freq[core]
					if fd := s.freq[m[edge.To]]; fd < fSlow {
						fSlow = fd
					}
					sc.commDelaySec += float64(edge.Cycles) / fSlow
					push(now+float64(edge.Cycles)/fSlow, false, edge.To)
				}
			} else {
				t := e.task
				s.remainingPreds[t]--
				if s.remainingPreds[t] == 0 {
					s.pools[m[t]] = append(s.pools[m[t]], t)
					touch(m[t])
				}
			}
		}
		for _, c := range s.touchedList {
			dispatch(c, now)
			s.touched[c] = false
		}
	}
	if scheduledCount != n {
		return nil, fmt.Errorf("sched: graph %q not schedulable (%d of %d tasks ran)", g.Name(), scheduledCount, n)
	}

	// Eq. (7): per-core busy cycles = task cycles + dependency cycles of
	// cross-core edges, billed to both endpoint cores (the producer drives
	// the link, the consumer receives; DESIGN.md §5).
	for t := 0; t < n; t++ {
		core := m[t]
		sc.busyCycles[core] += g.Task(taskgraph.TaskID(t)).Cycles
		for _, e := range g.Succs(taskgraph.TaskID(t)) {
			if m[e.To] != core {
				sc.busyCycles[core] += e.Cycles
				sc.busyCycles[m[e.To]] += e.Cycles
			}
		}
	}
	for c := range sc.busySec {
		sc.busySec[c] = float64(sc.busyCycles[c]) / s.freq[c]
	}
	return sc, nil
}

// heapPush inserts an event into the agenda min-heap. Hand-rolled rather
// than container/heap: the interface indirection and per-op allocations of
// the stdlib adapter are measurable at this call frequency, and the agenda
// is the scheduler's innermost data structure.
func (s *Scheduler) heapPush(e agendaEvent) {
	s.agenda = append(s.agenda, e)
	i := len(s.agenda) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !agendaLess(s.agenda[i], s.agenda[parent]) {
			break
		}
		s.agenda[i], s.agenda[parent] = s.agenda[parent], s.agenda[i]
		i = parent
	}
}

// heapPop removes and returns the agenda's (at, seq)-minimum event.
func (s *Scheduler) heapPop() agendaEvent {
	top := s.agenda[0]
	last := len(s.agenda) - 1
	s.agenda[0] = s.agenda[last]
	s.agenda = s.agenda[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && agendaLess(s.agenda[l], s.agenda[small]) {
			small = l
		}
		if r < last && agendaLess(s.agenda[r], s.agenda[small]) {
			small = r
		}
		if small == i {
			break
		}
		s.agenda[i], s.agenda[small] = s.agenda[small], s.agenda[i]
		i = small
	}
	return top
}

// Clone returns an independent deep copy of the schedule, safe to retain
// after the Scheduler that produced it moves on.
func (s *Schedule) Clone() *Schedule {
	out := *s
	out.Mapping = s.Mapping.Clone()
	out.Scaling = append([]int(nil), s.Scaling...)
	out.Slots = append([]Slot(nil), s.Slots...)
	out.busyCycles = append([]int64(nil), s.busyCycles...)
	out.busySec = append([]float64(nil), s.busySec...)
	out.freqHz = append([]float64(nil), s.freqHz...)
	return &out
}
