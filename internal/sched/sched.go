// Package sched implements application task mapping and list scheduling on
// the MPSoC platform.
//
// A Mapping assigns every task of a task graph to a processing core; the
// list scheduler (used by step 2 of the paper's flow, Fig. 7 step A/D) then
// orders the tasks of each core by b-level priority, respecting data
// dependencies and charging edge communication time only when producer and
// consumer sit on different cores.
//
// Cross-core edge timing follows the platform's communication fabric. By
// default the architecture has dedicated contention-free point-to-point
// links (§II-A) and an edge costs its cycle count at the slower endpoint's
// clock. When the platform carries an arch.Interconnect (bus or 2D-mesh
// NoC), an edge instead moves cycles·BitsPerCycle bits over the fabric in
// hops·HopLatencySec + bits/BandwidthBps seconds, and concurrent transfers
// sharing a link serialize deterministically in agenda (time, seq) order.
// Either way the eq. (7) busy-cycle billing — each cross-core edge's
// cycles billed to both endpoint cores — is unchanged: the fabric shapes
// when tokens arrive, not the cycles the endpoint cores spend driving and
// receiving them.
//
// Cores run at per-core DVS frequencies, so schedule timestamps are kept in
// seconds; per-core busy time is additionally reported in that core's clock
// cycles, which is the T_i of eq. (7) consumed by the Γ model (eq. 3).
//
// Two makespan views are provided:
//
//   - MakespanSeconds: single-iteration DAG makespan (random task graphs).
//   - PipelinedMakespanSeconds(F): the streaming view for applications like
//     the MPEG-2 decoder whose task costs cover an F-frame stream executed
//     as a software pipeline; throughput is limited by the bottleneck core,
//     plus a pipeline fill term of one iteration (DESIGN.md §5.5).
package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
)

// Mapping assigns each task (by TaskID index) to a core index in [0, C).
type Mapping []int

// NewMapping returns an all-zeroes (all tasks on core 0) mapping for n tasks.
func NewMapping(n int) Mapping { return make(Mapping, n) }

// Clone returns an independent copy.
func (m Mapping) Clone() Mapping { return append(Mapping(nil), m...) }

// Validate checks that the mapping covers exactly the graph's tasks and
// references only cores in [0, cores).
func (m Mapping) Validate(g *taskgraph.Graph, cores int) error {
	if len(m) != g.N() {
		return fmt.Errorf("sched: mapping covers %d tasks, graph has %d", len(m), g.N())
	}
	for t, c := range m {
		if c < 0 || c >= cores {
			return fmt.Errorf("sched: task %d mapped to core %d outside [0,%d)", t, c, cores)
		}
	}
	return nil
}

// CoreTasks returns, per core, the tasks assigned to it (in TaskID order).
func (m Mapping) CoreTasks(cores int) [][]taskgraph.TaskID {
	out := make([][]taskgraph.TaskID, cores)
	for t, c := range m {
		if c >= 0 && c < cores {
			out[c] = append(out[c], taskgraph.TaskID(t))
		}
	}
	return out
}

// CoreLoads returns the number of tasks mapped to each core.
func (m Mapping) CoreLoads(cores int) []int {
	loads := make([]int, cores)
	for _, c := range m {
		if c >= 0 && c < cores {
			loads[c]++
		}
	}
	return loads
}

// UsesAllCores reports whether every core hosts at least one task — the
// architecture-allocation premise of the paper's Fig. 6 algorithm ("ensure
// tasks are mapped in all cores"). Trivially true when there are fewer
// tasks than cores.
func (m Mapping) UsesAllCores(cores int) bool {
	if len(m) < cores {
		return true
	}
	for _, l := range m.CoreLoads(cores) {
		if l == 0 {
			return false
		}
	}
	return true
}

// UsedCores returns the number of cores with at least one task.
func (m Mapping) UsedCores(cores int) int {
	used := make([]bool, cores)
	n := 0
	for _, c := range m {
		if c >= 0 && c < cores && !used[c] {
			used[c] = true
			n++
		}
	}
	return n
}

// RoundRobin maps task i to core i mod cores.
func RoundRobin(n, cores int) Mapping {
	m := make(Mapping, n)
	for i := range m {
		m[i] = i % cores
	}
	return m
}

// RandomMapping draws a uniform mapping of n tasks onto cores from rng.
func RandomMapping(rng *rand.Rand, n, cores int) Mapping {
	m := make(Mapping, n)
	for i := range m {
		m[i] = rng.Intn(cores)
	}
	return m
}

// Slot is the scheduled execution window of one task, in seconds from the
// start of the application.
type Slot struct {
	Task     taskgraph.TaskID
	Core     int
	StartSec float64
	EndSec   float64
}

// Schedule is the result of list scheduling a mapping at a scaling vector.
type Schedule struct {
	Graph   *taskgraph.Graph
	Mapping Mapping
	Scaling []int

	Slots        []Slot  // indexed by TaskID
	busyCycles   []int64 // eq. (7) T_i per core, in that core's cycles
	busySec      []float64
	makespan     float64
	freqHz       []float64
	commDelaySec float64            // summed realized transfer latency
	icn          *arch.Interconnect // fabric the timing was produced under
}

// ListSchedule schedules g under mapping on the platform with the per-core
// scaling vector, using event-driven list scheduling: whenever a core is
// idle and has data-ready tasks, the one with the highest b-level (longest
// path to a leaf including communication) is dispatched, with TaskID as the
// deterministic tie break. This is exactly the dispatch policy of the
// cycle-level simulator in internal/sim, so the two makespans agree — the
// analytic scheduler is the fast mirror the optimizers iterate on.
//
// ListSchedule is the one-shot convenience form: it builds a throwaway
// Scheduler, so the returned Schedule is uniquely owned by the caller. Hot
// loops that schedule thousands of mappings should hold a Scheduler (or a
// metrics.Evaluator) and reuse it.
func ListSchedule(g *taskgraph.Graph, p *arch.Platform, m Mapping, scaling []int) (*Schedule, error) {
	if err := m.Validate(g, p.Cores()); err != nil {
		return nil, err
	}
	sc := NewScheduler(g, p)
	if err := sc.Bind(scaling); err != nil {
		return nil, err
	}
	return sc.Schedule(m)
}

// MakespanSeconds returns the single-iteration DAG makespan.
func (s *Schedule) MakespanSeconds() float64 { return s.makespan }

// BusyCycles returns eq. (7)'s T_i for core i, in core-i clock cycles.
func (s *Schedule) BusyCycles(core int) int64 { return s.busyCycles[core] }

// BusySeconds returns the busy time of core i in seconds.
func (s *Schedule) BusySeconds(core int) float64 { return s.busySec[core] }

// TotalBusyCycles returns Σ_i T_i.
func (s *Schedule) TotalBusyCycles() int64 {
	var total int64
	for _, c := range s.busyCycles {
		total += c
	}
	return total
}

// MaxBusySeconds returns the bottleneck core's busy time in seconds.
func (s *Schedule) MaxBusySeconds() float64 {
	best := 0.0
	for _, v := range s.busySec {
		if v > best {
			best = v
		}
	}
	return best
}

// PipelinedMakespanSeconds returns the makespan of executing the application
// as a software pipeline of `iterations` stream iterations whose total work
// equals the task costs (the MPEG-2 decoder view, DESIGN.md §5.5):
// bottleneck-core busy time plus a fill term of one iteration's slack.
// iterations = 1 degrades to the plain DAG makespan.
func (s *Schedule) PipelinedMakespanSeconds(iterations int) float64 {
	if iterations <= 1 {
		return s.makespan
	}
	bottleneck := s.MaxBusySeconds()
	fill := (s.makespan - bottleneck) / float64(iterations)
	if fill < 0 {
		fill = 0
	}
	return bottleneck + fill
}

// Utilization returns per-core α_i = busy seconds / makespan (clamped to
// [0,1]) — the activity factors consumed by the eq. (5) power model.
// The horizon is the pipelined makespan for the given iteration count.
func (s *Schedule) Utilization(iterations int) []float64 {
	horizon := s.PipelinedMakespanSeconds(iterations)
	out := make([]float64, len(s.busySec))
	if horizon <= 0 {
		return out
	}
	for c, v := range s.busySec {
		u := v / horizon
		if u > 1 {
			u = 1
		}
		out[c] = u
	}
	return out
}

// FreqHz returns the operating frequency of core i under this schedule.
func (s *Schedule) FreqHz(core int) float64 { return s.freqHz[core] }

// CommDelaySeconds returns the summed realized latency of every cross-core
// transfer of the schedule — the network view of communication cost. Under
// the ideal fabric each transfer contributes cycles at the slower
// endpoint's clock; under an interconnect it contributes the actual
// hops·latency + serialization + queuing delay the transfer incurred.
// Contrast CommSeconds, the endpoint-occupancy (billing) view.
func (s *Schedule) CommDelaySeconds() float64 { return s.commDelaySec }

// Interconnect returns the fabric the schedule was timed under (nil =
// ideal point-to-point links).
func (s *Schedule) Interconnect() *arch.Interconnect { return s.icn }

// Cores returns the number of platform cores the schedule spans.
func (s *Schedule) Cores() int { return len(s.busyCycles) }

// Gantt renders an ASCII Gantt chart of the schedule, one row per core,
// with the given number of character columns.
func (s *Schedule) Gantt(width int) string {
	if width < 16 {
		width = 16
	}
	var sb strings.Builder
	span := s.makespan
	if span <= 0 {
		return "(empty schedule)\n"
	}
	type byStart []Slot
	rows := make([][]Slot, len(s.busyCycles))
	for _, slot := range s.Slots {
		rows[slot.Core] = append(rows[slot.Core], slot)
	}
	for c, row := range rows {
		sort.Slice(byStart(row), func(i, j int) bool { return row[i].StartSec < row[j].StartSec })
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		for _, slot := range row {
			lo := int(slot.StartSec / span * float64(width))
			hi := int(slot.EndSec / span * float64(width))
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			label := s.Graph.Task(slot.Task).Name
			for i := lo; i < hi; i++ {
				if k := i - lo; k < len(label) {
					line[i] = label[k]
				} else {
					line[i] = '='
				}
			}
		}
		fmt.Fprintf(&sb, "core %d |%s| %6.3fs busy\n", c, line, s.busySec[c])
	}
	fmt.Fprintf(&sb, "makespan %.4fs\n", span)
	return sb.String()
}
