package sched

import (
	"fmt"
	"sort"
)

// Validate checks the structural invariants of a schedule and returns the
// first violation found, if any:
//
//   - every task has a slot on its mapped core;
//   - no two slots overlap on the same core;
//   - every dependency is respected, including cross-core communication
//     latency — at the slower endpoint's clock under the ideal fabric, or
//     at least the uncontended interconnect transfer time (contention only
//     ever delays a token, so the uncontended time is a sound floor);
//   - the recorded makespan equals the latest slot end;
//   - the per-core busy-cycle billing is exactly the eq. (7) model: each
//     core's task cycles plus the cycles of every cross-core edge it is an
//     endpoint of (billed to BOTH endpoints — the producer drives the
//     transfer, the consumer receives it), with busy seconds consistent at
//     each core's own clock. CommSeconds reports the same model, so an
//     externally-constructed schedule cannot silently disagree with it.
//
// The scheduler produces valid schedules by construction; Validate exists
// for tests, for externally-constructed schedules, and as an executable
// statement of the timing and billing model.
func (s *Schedule) Validate() error {
	g := s.Graph
	n := g.N()
	if len(s.Slots) != n {
		return fmt.Errorf("sched: %d slots for %d tasks", len(s.Slots), n)
	}
	const eps = 1e-12
	for t := 0; t < n; t++ {
		slot := s.Slots[t]
		if int(slot.Task) != t {
			return fmt.Errorf("sched: slot %d holds task %d", t, slot.Task)
		}
		if slot.Core != s.Mapping[t] {
			return fmt.Errorf("sched: task %d scheduled on core %d, mapped to %d", t, slot.Core, s.Mapping[t])
		}
		if slot.EndSec < slot.StartSec {
			return fmt.Errorf("sched: task %d has negative duration", t)
		}
	}
	// Per-core overlap check.
	perCore := make(map[int][]Slot)
	for _, slot := range s.Slots {
		perCore[slot.Core] = append(perCore[slot.Core], slot)
	}
	for core, slots := range perCore {
		sort.Slice(slots, func(i, j int) bool { return slots[i].StartSec < slots[j].StartSec })
		for i := 1; i < len(slots); i++ {
			if slots[i].StartSec < slots[i-1].EndSec-eps {
				return fmt.Errorf("sched: core %d overlap between tasks %d and %d",
					core, slots[i-1].Task, slots[i].Task)
			}
		}
	}
	// Precedence check.
	for _, e := range g.Edges() {
		pre, post := s.Slots[e.From], s.Slots[e.To]
		minStart := pre.EndSec
		if s.Mapping[e.From] != s.Mapping[e.To] && e.Cycles > 0 {
			if s.icn != nil {
				minStart += s.icn.TransferSeconds(s.Mapping[e.From], s.Mapping[e.To], e.Cycles)
			} else {
				fSlow := s.freqHz[s.Mapping[e.From]]
				if fd := s.freqHz[s.Mapping[e.To]]; fd < fSlow {
					fSlow = fd
				}
				minStart += float64(e.Cycles) / fSlow
			}
		}
		if post.StartSec < minStart-eps {
			return fmt.Errorf("sched: edge %d->%d violated: start %.12f < %.12f",
				e.From, e.To, post.StartSec, minStart)
		}
	}
	// Eq. (7) billing check: recompute each core's busy cycles from the
	// graph and mapping, and the busy seconds at that core's clock.
	wantCycles := make([]int64, len(s.busyCycles))
	for t := 0; t < n; t++ {
		core := s.Mapping[t]
		wantCycles[core] += g.Task(s.Slots[t].Task).Cycles
		for _, e := range g.Succs(s.Slots[t].Task) {
			if s.Mapping[e.To] != core {
				wantCycles[core] += e.Cycles
				wantCycles[s.Mapping[e.To]] += e.Cycles
			}
		}
	}
	for c, want := range wantCycles {
		if s.busyCycles[c] != want {
			return fmt.Errorf("sched: core %d bills %d busy cycles, eq. (7) both-endpoint model gives %d",
				c, s.busyCycles[c], want)
		}
		wantSec := float64(want) / s.freqHz[c]
		if diff := s.busySec[c] - wantSec; diff > eps || diff < -eps {
			return fmt.Errorf("sched: core %d busy %.12fs, billing at %.0f Hz gives %.12fs",
				c, s.busySec[c], s.freqHz[c], wantSec)
		}
	}
	// Makespan check.
	var maxEnd float64
	for _, slot := range s.Slots {
		if slot.EndSec > maxEnd {
			maxEnd = slot.EndSec
		}
	}
	if diff := maxEnd - s.makespan; diff > eps || diff < -eps {
		return fmt.Errorf("sched: makespan %.12f != max slot end %.12f", s.makespan, maxEnd)
	}
	return nil
}

// Slack returns, per task, the amount of time (seconds) the task's
// completion could slip without extending the makespan, holding everything
// else fixed: makespan − (start + duration + longest downstream path).
// Zero-slack tasks form the schedule's critical path.
func (s *Schedule) Slack() []float64 {
	g := s.Graph
	n := g.N()
	// Longest downstream time from each task's completion to the makespan,
	// walking the schedule's realized timing in reverse topological order.
	tail := make([]float64, n)
	topo := g.TopoOrder()
	for i := n - 1; i >= 0; i-- {
		t := topo[i]
		for _, e := range g.Succs(t) {
			// Realized gap between this task's end and the successor's end.
			d := s.Slots[e.To].EndSec - s.Slots[t].EndSec + tail[e.To]
			if d > tail[t] {
				tail[t] = d
			}
		}
	}
	out := make([]float64, n)
	for t := 0; t < n; t++ {
		out[t] = s.makespan - s.Slots[t].EndSec - tail[t]
		if out[t] < 0 {
			out[t] = 0
		}
	}
	return out
}

// CriticalTasks returns the tasks with (near-)zero slack, in TaskID order.
func (s *Schedule) CriticalTasks() []int {
	slack := s.Slack()
	var out []int
	for t, v := range slack {
		if v <= 1e-9*s.makespan {
			out = append(out, t)
		}
	}
	return out
}

// LoadImbalance returns max busy seconds minus min busy seconds across
// cores that host at least one task — a balance diagnostic for mappings.
func (s *Schedule) LoadImbalance() float64 {
	used := make(map[int]bool)
	for _, c := range s.Mapping {
		used[c] = true
	}
	first := true
	var lo, hi float64
	for c, b := range s.busySec {
		if !used[c] {
			continue
		}
		if first {
			lo, hi = b, b
			first = false
			continue
		}
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	return hi - lo
}

// CommSeconds returns the total cross-core communication busy time of the
// schedule in seconds under the eq. (7) billing model the scheduler uses:
// each cross-core edge's cycles are billed to BOTH endpoint cores — the
// producer drives the transfer, the consumer receives it — so an edge
// contributes cycles/f_producer + cycles/f_consumer. This is exactly the
// communication share of Σ_c BusySeconds(c); Validate asserts the per-core
// billing, so the two views cannot drift apart. (It previously counted
// each edge once at the slower endpoint's clock, disagreeing with the
// scheduler's billing.) For the realized network latency — what tokens
// actually waited, including interconnect queuing — see CommDelaySeconds.
func (s *Schedule) CommSeconds() float64 {
	var total float64
	for _, e := range s.Graph.Edges() {
		if s.Mapping[e.From] == s.Mapping[e.To] || e.Cycles == 0 {
			continue
		}
		total += float64(e.Cycles)/s.freqHz[s.Mapping[e.From]] + float64(e.Cycles)/s.freqHz[s.Mapping[e.To]]
	}
	return total
}
