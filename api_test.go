package seadopt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestOptimizeDeterministicAcrossParallelism: the public contract of the
// exploration engine — the same Seed yields a byte-identical Design
// (scaling, mapping, Γ) at Parallelism 1, 4 and NumCPU.
func TestOptimizeDeterministicAcrossParallelism(t *testing.T) {
	sys, err := NewARM7System(MPEG2(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	fingerprint := func(par int) string {
		d, err := sys.Optimize(OptimizeOptions{
			DeadlineSec:      MPEG2Deadline,
			StreamIterations: MPEG2Frames,
			SearchMoves:      250,
			Seed:             2010,
			Parallelism:      par,
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return fmt.Sprintf("%v|%v|%x", d.Scaling, d.Mapping, d.Eval.Gamma)
	}
	ref := fingerprint(1)
	for _, par := range []int{4, runtime.NumCPU()} {
		if got := fingerprint(par); got != ref {
			t.Errorf("parallelism %d design %q != sequential %q", par, got, ref)
		}
	}
}

// TestOptimizeContextCancellation: OptimizeContext returns ctx.Err()
// promptly once cancelled.
func TestOptimizeContextCancellation(t *testing.T) {
	g, err := RandomGraph(DefaultRandomGraphConfig(60), 5)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewARM7System(g, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = sys.OptimizeContext(ctx, OptimizeOptions{
		DeadlineSec: RandomGraphDeadline(60),
		SearchMoves: 200000,
		Seed:        1,
		Parallelism: 2,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestOptimizeProgress: one in-order callback per scaling combination.
func TestOptimizeProgress(t *testing.T) {
	sys, err := NewARM7System(MPEG2(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	_, err = sys.Optimize(OptimizeOptions{
		DeadlineSec:      MPEG2Deadline,
		StreamIterations: MPEG2Frames,
		SearchMoves:      60,
		Seed:             1,
		Parallelism:      4,
		Progress:         func(p ExploreProgress) { got = append(got, p.Index) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 15 {
		t.Fatalf("%d progress events, want 15", len(got))
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("progress out of order: %v", got)
		}
	}
}

// TestTrueZeroSER: a negative SER selects a genuine zero soft error rate
// (previously unexpressible behind the 0-means-default sentinel).
func TestTrueZeroSER(t *testing.T) {
	sys, err := NewARM7System(MPEG2(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := Mapping{0, 0, 0, 0, 0, 0, 1, 1, 2, 3, 3}
	scaling := []int{2, 2, 3, 2}
	ev, err := sys.Evaluate(m, scaling, OptimizeOptions{StreamIterations: 1, SER: -1})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Gamma != 0 {
		t.Errorf("SER<0 gave Γ = %v, want true zero", ev.Gamma)
	}
	evDefault, err := sys.Evaluate(m, scaling, OptimizeOptions{StreamIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if evDefault.Gamma <= 0 {
		t.Error("SER=0 no longer selects the default rate")
	}
	measured, expected, err := sys.InjectFaults(m, scaling, 1, -1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if measured != 0 || expected != 0 {
		t.Errorf("zero-rate injection measured %d (expected %v), want 0", measured, expected)
	}
}

func TestNewARM7System(t *testing.T) {
	sys, err := NewARM7System(Fig8(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Platform.Cores() != 3 || sys.Platform.NumLevels() != 3 {
		t.Errorf("platform shape wrong: %d cores, %d levels",
			sys.Platform.Cores(), sys.Platform.NumLevels())
	}
	if _, err := NewARM7System(nil, 3, 3); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewARM7System(Fig8(), 3, 7); err == nil {
		t.Error("7-level table accepted")
	}
	if _, err := NewARM7System(Fig8(), 0, 3); err == nil {
		t.Error("0 cores accepted")
	}
	if _, err := NewSystem(nil, nil); err == nil {
		t.Error("NewSystem(nil,nil) accepted")
	}
}

func TestOptimizeFig8EndToEnd(t *testing.T) {
	sys, err := NewARM7System(Fig8(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := OptimizeOptions{
		DeadlineSec: MPEG2Deadline, // generous for the tiny example
		SearchMoves: 300,
		Seed:        1,
	}
	design, err := sys.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !design.Eval.MeetsDeadline {
		t.Fatal("optimized design misses a generous deadline")
	}
	sum := design.Summary()
	for _, want := range []string{"scaling", "core 0", "core 2", "Γ="} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary missing %q:\n%s", want, sum)
		}
	}
	if g := design.Gantt(60); !strings.Contains(g, "makespan") {
		t.Errorf("Gantt output wrong:\n%s", g)
	}
}

func TestOptimizeFig8WithItsOwnDeadline(t *testing.T) {
	// The worked example's 75 ms deadline with its 3-core platform.
	sys, err := NewARM7System(Fig8(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	design, err := sys.Optimize(OptimizeOptions{
		DeadlineSec: 0.075,
		SearchMoves: 500,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !design.Eval.MeetsDeadline {
		t.Fatalf("no feasible design for the Fig. 8 example: T_M=%v", design.Eval.TMSeconds)
	}
	// Under single-pass DAG semantics the example's critical path
	// (t1→t3→t4→t6 ≈ 72 ms at 200 MHz) pins the chain near nominal speed;
	// the margin is razor thin, so the design must sit close to the
	// deadline rather than waste slack.
	if design.Eval.TMSeconds > 0.075 {
		t.Errorf("T_M %v exceeds the 75 ms deadline", design.Eval.TMSeconds)
	}
	if design.Eval.TMSeconds < 0.030 {
		t.Errorf("T_M %v suspiciously far below the deadline for this graph", design.Eval.TMSeconds)
	}
}

func TestBaselineVsProposed(t *testing.T) {
	sys, err := NewARM7System(MPEG2(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := OptimizeOptions{
		DeadlineSec:      MPEG2Deadline,
		StreamIterations: MPEG2Frames,
		SearchMoves:      400,
		Seed:             3,
	}
	proposed, err := sys.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := sys.OptimizeBaseline(MinimizeRegisterUsage, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !proposed.Eval.MeetsDeadline || !baseline.Eval.MeetsDeadline {
		t.Fatal("designs miss the deadline")
	}
	// The R-minimizing baseline must not beat the proposed design on R by
	// being beaten on it (i.e. baseline's defining metric holds).
	if baseline.Eval.TotalRegBits > proposed.Eval.TotalRegBits {
		t.Logf("note: baseline R %d > proposed R %d (possible at differing scalings)",
			baseline.Eval.TotalRegBits, proposed.Eval.TotalRegBits)
	}
}

func TestEvaluateSimulateInjectConsistency(t *testing.T) {
	sys, err := NewARM7System(MPEG2(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := Mapping{0, 0, 0, 0, 0, 0, 1, 1, 2, 3, 3}
	scaling := []int{2, 2, 3, 2}
	ev, err := sys.Evaluate(m, scaling, OptimizeOptions{StreamIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Simulate(m, scaling, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.MakespanSec-ev.MakespanSec)/ev.MakespanSec > 1e-9 {
		t.Errorf("simulated makespan %v != analytic %v", r.MakespanSec, ev.MakespanSec)
	}
	measured, expected, err := sys.InjectFaults(m, scaling, 1, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(expected-ev.Gamma)/ev.Gamma > 0.01 {
		t.Errorf("injection expectation %v vs analytic Γ %v", expected, ev.Gamma)
	}
	if sigma := math.Sqrt(expected); math.Abs(float64(measured)-expected) > 6*sigma {
		t.Errorf("measured Γ %d improbably far from %v", measured, expected)
	}
}

func TestScalingCombinations(t *testing.T) {
	sys, err := NewARM7System(MPEG2(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	combos, err := sys.ScalingCombinations()
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 15 {
		t.Errorf("got %d combinations, want 15 (Fig. 5b)", len(combos))
	}
	next, ok := NextScaling([]int{3, 3, 3, 3})
	if !ok || next[3] != 2 {
		t.Errorf("NextScaling([3 3 3 3]) = %v,%v", next, ok)
	}
}

func TestRandomGraphFacade(t *testing.T) {
	g, err := RandomGraph(DefaultRandomGraphConfig(20), 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 {
		t.Errorf("random graph has %d tasks", g.N())
	}
	if d := RandomGraphDeadline(20); d != 10 {
		t.Errorf("deadline = %v, want 10 s", d)
	}
}

func TestStatsAndCustomPlatform(t *testing.T) {
	sys, err := NewARM7System(MPEG2(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Tasks != 11 || st.Depth < 9 || st.Parallelism <= 0 {
		t.Errorf("stats off: %+v", st)
	}
	p, err := NewCustomPlatform(2, 180, 90)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cores() != 2 || p.NumLevels() != 2 {
		t.Errorf("custom platform shape wrong")
	}
	if _, err := NewCustomPlatform(2, 90, 180); err == nil {
		t.Error("increasing frequencies accepted")
	}
	// The custom platform works end to end.
	sys2, err := NewSystem(Fig8(), p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sys2.Optimize(OptimizeOptions{SearchMoves: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.Eval.Gamma <= 0 {
		t.Error("degenerate design on custom platform")
	}
}
