package seadopt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestParseGraphFormats(t *testing.T) {
	want := MPEG2()
	jdoc, err := want.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]struct {
		format string
		doc    string
	}{
		"json explicit": {"json", string(jdoc)},
		"json sniffed":  {"", string(jdoc)},
		"dot explicit":  {"dot", want.DOT()},
		"dot sniffed":   {"auto", want.DOT()},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			g, err := ParseGraph(tc.format, strings.NewReader(tc.doc))
			if err != nil {
				t.Fatalf("ParseGraph: %v", err)
			}
			if g.N() != want.N() {
				t.Fatalf("got %d tasks, want %d", g.N(), want.N())
			}
		})
	}

	const tgff = "@TASK_GRAPH 0 {\nTASK a TYPE 0\nTASK b TYPE 0\nARC e FROM a TO b TYPE 0\n}\n"
	g, err := ParseGraph("tgff", strings.NewReader(tgff))
	if err != nil {
		t.Fatalf("ParseGraph(tgff): %v", err)
	}
	if g.N() != 2 {
		t.Fatalf("tgff graph has %d tasks, want 2", g.N())
	}

	if _, err := ParseGraph("xml", strings.NewReader("<g/>")); err == nil {
		t.Fatal("accepted unknown format")
	}
	if _, err := ParseGraph("", strings.NewReader("not a graph")); err == nil {
		t.Fatal("sniffed garbage")
	}
}

// TestDesignMarshalJSONDeterministic: the wire encoding is the service's
// cache payload, so equal designs must produce equal bytes.
func TestDesignMarshalJSONDeterministic(t *testing.T) {
	sys, err := NewARM7System(MPEG2(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := OptimizeOptions{
		DeadlineSec:      MPEG2Deadline,
		StreamIterations: MPEG2Frames,
		Seed:             2010,
	}
	d1, err := sys.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 4
	d2, err := sys.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.Marshal(d1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(d2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("same problem, different wire bytes:\n%s\nvs\n%s", j1, j2)
	}

	// The encoding is complete enough to rebuild the design point: scaling,
	// mapping, and the headline metrics.
	var w struct {
		Graph   string `json:"graph"`
		Scaling []int  `json:"scaling"`
		Mapping []int  `json:"mapping"`
		Eval    struct {
			PowerW        float64 `json:"power_w"`
			Gamma         float64 `json:"gamma"`
			MeetsDeadline bool    `json:"meets_deadline"`
		} `json:"eval"`
		Cores []struct {
			Tasks []string `json:"tasks"`
		} `json:"cores"`
	}
	if err := json.Unmarshal(j1, &w); err != nil {
		t.Fatal(err)
	}
	if w.Graph == "" || len(w.Scaling) != 4 || len(w.Mapping) != MPEG2().N() {
		t.Fatalf("incomplete wire design: %+v", w)
	}
	if w.Eval.PowerW != d1.Eval.PowerW || w.Eval.Gamma != d1.Eval.Gamma {
		t.Fatal("wire eval drifted from in-memory eval")
	}
	var mapped int
	for _, c := range w.Cores {
		mapped += len(c.Tasks)
	}
	if mapped != MPEG2().N() {
		t.Fatalf("per-core task lists cover %d tasks, want %d", mapped, MPEG2().N())
	}

	// Marshaling an unevaluated design is an error, not a panic.
	if _, err := json.Marshal(&Design{}); err == nil {
		t.Fatal("marshaled an unevaluated design")
	}
}

// TestParsePlatformSpecFacade: the root-level spec reader builds a working
// heterogeneous platform that the full optimization pipeline accepts.
func TestParsePlatformSpecFacade(t *testing.T) {
	spec := `{
	  "types": [
	    {"name": "arm7x3", "freqs_mhz": [200, 100, 66.667]},
	    {"name": "arm7x2", "freqs_mhz": [200, 100]}
	  ],
	  "cores": [{"type": "arm7x3", "count": 2}, {"type": "arm7x2"}]
	}`
	p, err := ParsePlatformSpec(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cores() != 3 || p.Homogeneous() {
		t.Fatalf("Cores=%d Homogeneous=%v", p.Cores(), p.Homogeneous())
	}
	sys, err := NewSystem(Fig8(), p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sys.Optimize(OptimizeOptions{DeadlineSec: 0.075, SearchMoves: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Scaling) != 3 {
		t.Fatalf("design scaling %v on a 3-core platform", d.Scaling)
	}
	if _, err := ParsePlatformSpec(strings.NewReader(`{"cores": 4}`)); err == nil {
		t.Error("spec without types accepted")
	}

	// The facade constructor mirrors the spec path.
	hp, err := NewHeterogeneousPlatform(
		[]ProcType{{Name: "a", Levels: p.Levels(0)}, {Name: "b", Levels: p.Levels(2)}},
		[]int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if hp.Cores() != 3 || hp.Homogeneous() {
		t.Fatalf("facade platform Cores=%d Homogeneous=%v", hp.Cores(), hp.Homogeneous())
	}
	if _, err := NewHeterogeneousPlatform(nil, []int{0}); err == nil {
		t.Error("nil types accepted")
	}
}

// TestSystemNextScaling: the platform-aware successor walks exactly the
// ScalingCombinations sequence on heterogeneous platforms, where the
// homogeneous package-level NextScaling does not apply.
func TestSystemNextScaling(t *testing.T) {
	spec := `{
	  "types": [
	    {"name": "arm7x3", "freqs_mhz": [200, 100, 66.667]},
	    {"name": "arm7x2", "freqs_mhz": [200, 100]}
	  ],
	  "cores": [{"type": "arm7x3", "count": 2}, {"type": "arm7x2"}]
	}`
	p, err := ParsePlatformSpec(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Fig8(), p)
	if err != nil {
		t.Fatal(err)
	}
	all, err := sys.ScalingCombinations()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(all); i++ {
		next, ok := sys.NextScaling(all[i])
		if !ok {
			t.Fatalf("NextScaling(%v) ended the sequence at %d of %d", all[i], i+1, len(all))
		}
		if fmt.Sprint(next) != fmt.Sprint(all[i+1]) {
			t.Fatalf("NextScaling(%v) = %v, want %v", all[i], next, all[i+1])
		}
		if err := p.ValidScaling(next); err != nil {
			t.Fatalf("NextScaling emitted an invalid vector %v: %v", next, err)
		}
	}
	if _, ok := sys.NextScaling(all[len(all)-1]); ok {
		t.Error("the all-fastest vector has a successor")
	}
	// Vectors outside the platform's caps are rejected, not walked.
	if _, ok := sys.NextScaling([]int{3, 3, 3}); ok {
		t.Error("NextScaling accepted a vector exceeding core 2's 2-level table")
	}
}
