package seadopt

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"seadopt/internal/mapping"
)

// sweepFP renders everything that identifies a returned design bit for bit.
func sweepFP(d *Design) string {
	if d == nil {
		return "nil"
	}
	return fmt.Sprintf("s=%v m=%v tm=%x p=%x g=%x met=%v",
		d.Scaling, d.Mapping, d.Eval.TMSeconds, d.Eval.PowerW, d.Eval.Gamma, d.Eval.MeetsDeadline)
}

func sweepMapFP(d *mapping.Design) string {
	if d == nil {
		return "nil"
	}
	return fmt.Sprintf("s=%v m=%v tm=%x p=%x g=%x met=%v",
		d.Scaling, d.Mapping, d.Eval.TMSeconds, d.Eval.PowerW, d.Eval.Gamma, d.Eval.MeetsDeadline)
}

func frontierFP(frontier []*Design) string {
	var sb strings.Builder
	for i, d := range frontier {
		fmt.Fprintf(&sb, "[%d] %s\n", i, sweepFP(d))
	}
	return sb.String()
}

// progressFP renders one Progress event completely, including the
// pruned/skipped verdict split and the incumbent after folding.
func progressFP(ev ExploreProgress) string {
	return fmt.Sprintf("i=%d/%d c=%d s=%v pruned=%v skipped=%v d={%s} best={%s} fs=%d adm=%v",
		ev.Index, ev.Total, ev.Combination, ev.Scaling, ev.Pruned, ev.Skipped,
		sweepMapFP(ev.Design), sweepMapFP(ev.Best), ev.FrontierSize, ev.Admitted)
}

// sweepTestPoints is a mixed scalar/Pareto sweep over three deadlines and
// two objective sets.
func sweepTestPoints(t *testing.T) []SweepPoint {
	t.Helper()
	pm, err := ParseParetoObjectives("power,makespan")
	if err != nil {
		t.Fatal(err)
	}
	return []SweepPoint{
		{DeadlineSec: MPEG2Deadline * 1.5},
		{DeadlineSec: MPEG2Deadline},
		{DeadlineSec: MPEG2Deadline, Pareto: true},
		{DeadlineSec: MPEG2Deadline, Pareto: true, Objectives: pm},
		{DeadlineSec: MPEG2Deadline * 0.8, Pareto: true},
		{DeadlineSec: MPEG2Deadline * 0.8},
	}
}

// coldPointRun evaluates one sweep point the pre-sweep way: a fresh,
// unshared, unseeded Optimize/OptimizePareto call.
func coldPointRun(t *testing.T, sys *System, base OptimizeOptions, pt SweepPoint,
	progress func(ExploreProgress)) (string, string) {
	t.Helper()
	o := base
	o.DeadlineSec = pt.DeadlineSec
	o.Progress = progress
	if pt.Pareto {
		o.Objectives = pt.Objectives
		frontier, err := sys.OptimizePareto(o)
		if err != nil {
			t.Fatal(err)
		}
		return "", frontierFP(frontier)
	}
	d, err := sys.Optimize(o)
	if err != nil {
		t.Fatal(err)
	}
	return sweepFP(d), ""
}

// TestSweepColdByteIdenticalAcrossParallelism is the sweep's core property:
// with NoWarmStart set, every point of a batch sweep — scalar and Pareto,
// sharing one probe cache, bounds precompute and evaluator pool — yields a
// Design/frontier AND a complete per-point Progress event stream (including
// the pruned/skipped split) byte-identical to an independent cold run of
// that point, at Parallelism 1, 4 and GOMAXPROCS.
func TestSweepColdByteIdenticalAcrossParallelism(t *testing.T) {
	sys, err := NewARM7System(MPEG2(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	points := sweepTestPoints(t)
	base := OptimizeOptions{
		StreamIterations: MPEG2Frames,
		SearchMoves:      200,
		Seed:             2010,
	}

	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b := base
		b.Parallelism = par

		coldDesign := make([]string, len(points))
		coldFrontier := make([]string, len(points))
		coldProg := make([][]string, len(points))
		for i, pt := range points {
			idx := i
			coldDesign[i], coldFrontier[i] = coldPointRun(t, sys, b, pt, func(ev ExploreProgress) {
				coldProg[idx] = append(coldProg[idx], progressFP(ev))
			})
		}

		sweepProg := make([][]string, len(points))
		res, err := sys.OptimizeSweep(points, SweepOptions{
			Options:     b,
			NoWarmStart: true,
			PointProgress: func(point int, ev ExploreProgress) {
				sweepProg[point] = append(sweepProg[point], progressFP(ev))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(points) {
			t.Fatalf("parallelism %d: %d results for %d points", par, len(res), len(points))
		}
		for i, r := range res {
			if r.Point != i {
				t.Errorf("parallelism %d: result %d tagged point %d", par, i, r.Point)
			}
			if got, want := sweepFP(r.Design), coldDesign[i]; points[i].Pareto {
				if r.Design != nil {
					t.Errorf("parallelism %d point %d: Pareto point returned a scalar Design", par, i)
				}
			} else if got != want {
				t.Errorf("parallelism %d point %d: design diverged from cold run:\n  sweep: %s\n  cold:  %s",
					par, i, got, want)
			}
			if points[i].Pareto {
				if got, want := frontierFP(r.Frontier), coldFrontier[i]; got != want {
					t.Errorf("parallelism %d point %d: frontier diverged from cold run:\n  sweep:\n%s  cold:\n%s",
						par, i, got, want)
				}
			} else if r.Frontier != nil {
				t.Errorf("parallelism %d point %d: scalar point returned a frontier", par, i)
			}
			if got, want := strings.Join(sweepProg[i], "\n"), strings.Join(coldProg[i], "\n"); got != want {
				t.Errorf("parallelism %d point %d: progress stream diverged from cold run (%d vs %d events)",
					par, i, len(sweepProg[i]), len(coldProg[i]))
			}
		}
	}
}

// TestSweepWarmStartSameResults drops NoWarmStart: scalar points pre-seed
// their incumbent via the ranked pass and Pareto points chain frontier
// ghosts, which may change the pruned/skipped split — but every returned
// Design and frontier must still be byte-identical to cold runs.
func TestSweepWarmStartSameResults(t *testing.T) {
	sys, err := NewARM7System(MPEG2(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	points := sweepTestPoints(t)
	base := OptimizeOptions{
		StreamIterations: MPEG2Frames,
		SearchMoves:      200,
		Seed:             2010,
		Parallelism:      4,
	}

	coldDesign := make([]string, len(points))
	coldFrontier := make([]string, len(points))
	for i, pt := range points {
		coldDesign[i], coldFrontier[i] = coldPointRun(t, sys, base, pt, nil)
	}

	res, err := sys.OptimizeSweep(points, SweepOptions{Options: base})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if points[i].Pareto {
			if got, want := frontierFP(r.Frontier), coldFrontier[i]; got != want {
				t.Errorf("point %d: warm frontier diverged from cold run:\n  warm:\n%s  cold:\n%s", i, got, want)
			}
		} else if got, want := sweepFP(r.Design), coldDesign[i]; got != want {
			t.Errorf("point %d: warm design diverged from cold run:\n  warm: %s\n  cold: %s", i, got, want)
		}
	}
}

// TestSweepDeadlineOnlyProbeHitRate pins the tentpole's cache economics: in
// a deadline-only sweep every combination is probed once for the whole
// batch. Under StrategyExhaustive each of the 8 points probes all 15
// combinations of the 4-core/3-level space, so exactly 15 probes miss (the
// first point's, climbing to the sweep's horizon) and the remaining 7×15
// are pure cache hits.
func TestSweepDeadlineOnlyProbeHitRate(t *testing.T) {
	sys, err := NewARM7System(MPEG2(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	var points []SweepPoint
	for i := 0; i < 8; i++ {
		points = append(points, SweepPoint{DeadlineSec: MPEG2Deadline * (1.4 - 0.1*float64(i))})
	}
	var stats ExploreStats
	_, err = sys.OptimizeSweep(points, SweepOptions{Options: OptimizeOptions{
		StreamIterations: MPEG2Frames,
		SearchMoves:      150,
		Seed:             7,
		Parallelism:      1,
		Strategy:         StrategyExhaustive,
		Stats:            &stats,
	}})
	if err != nil {
		t.Fatal(err)
	}
	const combos = 15
	if stats.ProbeCache.Misses != combos {
		t.Errorf("probe misses = %d, want %d (one per combination for the whole sweep)",
			stats.ProbeCache.Misses, combos)
	}
	if want := int64(7 * combos); stats.ProbeCache.Hits != want {
		t.Errorf("probe hits = %d, want %d (every later point served from cache)",
			stats.ProbeCache.Hits, want)
	}
}
