// Package seadopt is a Go reproduction of "Soft Error-Aware Design
// Optimization of Low Power and Time-Constrained Embedded Systems"
// (Shafik, Al-Hashimi, Chakrabarty — DATE 2010).
//
// The library co-optimizes the dynamic power and the soft-error reliability
// (number of single-event upsets experienced, Γ) of an application task
// graph mapped onto a DVS-capable homogeneous MPSoC, subject to a real-time
// constraint:
//
//   - per-core voltage scaling is enumerated with the paper's nextScaling
//     algorithm (Fig. 5) from the all-slowest to the all-nominal operating
//     point;
//   - at each scaling, a two-stage soft error-aware task mapper
//     (InitialSEAMapping, Fig. 6, plus search-based OptimizedMapping,
//     Fig. 7) minimizes Γ = Σ_i R_i·T_i·λ_i subject to the deadline;
//   - the deadline-meeting design at the cheapest scaling wins.
//
// Everything the optimization sits on is implemented here too: the task
// graph model with register footprints (including the paper's MPEG-2
// decoder and random-graph workloads), the ARM7 MPSoC platform model, an
// event-driven list scheduler, a discrete-event cycle-level simulator (the
// SystemC stand-in), a Poisson SEU fault injector, and the simulated-
// annealing baselines the paper compares against.
//
// # Quick start
//
//	sys, err := seadopt.NewARM7System(seadopt.MPEG2(), 4, 3)
//	if err != nil { ... }
//	design, err := sys.Optimize(seadopt.OptimizeOptions{
//		SER:              1e-9,
//		DeadlineSec:      seadopt.MPEG2Deadline,
//		StreamIterations: seadopt.MPEG2Frames,
//	})
//	if err != nil { ... }
//	fmt.Println(design.Summary())
//
// The experiment harness regenerating every table and figure of the paper's
// evaluation lives in cmd/experiments; see EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package seadopt
