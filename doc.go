// Package seadopt is a Go reproduction of "Soft Error-Aware Design
// Optimization of Low Power and Time-Constrained Embedded Systems"
// (Shafik, Al-Hashimi, Chakrabarty — DATE 2010).
//
// The library co-optimizes the dynamic power and the soft-error reliability
// (number of single-event upsets experienced, Γ) of an application task
// graph mapped onto a DVS-capable MPSoC — the paper's homogeneous ARM7
// platform, or a heterogeneous generalization with per-core processor types
// — subject to a real-time constraint:
//
//   - per-core voltage scaling is enumerated with the paper's nextScaling
//     algorithm (Fig. 5) from the all-slowest to the all-nominal operating
//     point;
//   - at each scaling, a two-stage soft error-aware task mapper
//     (InitialSEAMapping, Fig. 6, plus search-based OptimizedMapping,
//     Fig. 7) minimizes Γ = Σ_i R_i·T_i·λ_i subject to the deadline;
//   - the deadline-meeting design at the cheapest scaling wins.
//
// Everything the optimization sits on is implemented here too: the task
// graph model with register footprints (including the paper's MPEG-2
// decoder and random-graph workloads), the ARM7 MPSoC platform model, an
// event-driven list scheduler, a discrete-event cycle-level simulator (the
// SystemC stand-in), a Poisson SEU fault injector, and the simulated-
// annealing baselines the paper compares against.
//
// # Quick start
//
//	sys, err := seadopt.NewARM7System(seadopt.MPEG2(), 4, 3)
//	if err != nil { ... }
//	design, err := sys.Optimize(seadopt.OptimizeOptions{
//		SER:              1e-9,
//		DeadlineSec:      seadopt.MPEG2Deadline,
//		StreamIterations: seadopt.MPEG2Frames,
//	})
//	if err != nil { ... }
//	fmt.Println(design.Summary())
//
// # Concurrency and cancellation
//
// The Fig. 4 design loop is embarrassingly parallel across voltage-scaling
// combinations, and Optimize exploits that: combinations fan out over a
// bounded worker pool sized by OptimizeOptions.Parallelism (0 selects
// GOMAXPROCS, 1 runs sequentially). Each worker reuses one evaluator —
// schedule buffers, register-pressure bitsets, per-core metric rows — across
// the thousands of candidate mappings it scores, and every combination
// derives its own seed from (Seed, combination index), so the chosen design
// is byte-identical at any parallelism:
//
//	design, err := sys.Optimize(seadopt.OptimizeOptions{
//		DeadlineSec: seadopt.MPEG2Deadline,
//		Parallelism: 8,                  // same Design as Parallelism: 1
//		Progress: func(p seadopt.ExploreProgress) {
//			log.Printf("%d/%d %v", p.Index+1, p.Total, p.Scaling)
//		},
//	})
//
// Progress callbacks arrive in enumeration order regardless of worker
// timing. OptimizeContext and OptimizeBaselineContext accept a
// context.Context and return ctx.Err() promptly on cancellation.
//
// # Exploration strategies
//
// The scaling enumeration is streamed, never materialized, and
// OptimizeOptions.Strategy selects the walk. The default,
// StrategyBranchAndBound, prunes combinations whose admissible best-case
// makespan already misses the deadline and skips combinations whose nominal
// power is dominated by a resolved feasible incumbent (cancelling dominated
// in-flight work); because both rules discard only provably losing
// combinations — with a deterministic exhaustive fallback when no feasible
// design exists at all — it returns a byte-identical Design to
// StrategyExhaustive, the map-everything reference the paper tables are
// regenerated under. StrategySampled instead maps a seed-deterministic
// uniform sample of SampleBudget combinations: it is exact only in the
// trivial sense of being deterministic — its answer is the best design
// within the sample, with no optimality claim outside it — so reach for it
// only when the space is too large for the exact strategies, and never for
// regenerating paper results. Pruned/skipped combinations surface in
// ExploreProgress with their Pruned/Skipped flags set and a nil Design.
//
// # Objectives and Pareto exploration
//
// OptimizePareto replaces the scalar step-3 reduction with a multi-
// objective non-dominated fold: every deadline-feasible scaling
// combination contributes an objective vector — nominal dynamic power
// (eq. 5 at full utilization), multiprocessor execution time T_M, and the
// expected SEUs experienced Γ (eq. 3) — and the ordered Pareto frontier of
// those vectors is returned as a []*Design, sorted ascending by the active
// objectives in canonical order (power, then T_M, then Γ; excluded
// components are skipped) with the enumeration index as the final
// tie-break. OptimizeOptions.Objectives restricts
// dominance to a subset of the three components (ObjectivePower,
// ObjectiveMakespan, ObjectiveGamma; ParseParetoObjectives resolves
// "power,gamma"-style lists); the zero value selects all three.
//
// The frontier inherits the engine's determinism guarantees: byte-identical
// at any Parallelism and across StrategyBranchAndBound and
// StrategyExhaustive — under branch and bound, a combination is skipped
// only when its admissible lower-bound vector (exact nominal power, the
// metrics.Bounds makespan bound, zero Γ) is strictly dominated by a
// frontier member, which proves its realized vector could never join the
// frontier. Exact objective ties keep the lowest-enumeration-index design.
// When no design meets the deadline the frontier collapses to the scalar
// loop's deterministic "least infeasible" design. ExploreProgress carries
// the per-point view (FrontierSize, Admitted) for live consumers.
//
// # Heterogeneous platforms
//
// NewHeterogeneousPlatform (and ParsePlatformSpec, which reads the JSON
// platform-spec documents the CLI -platform flags and the seadoptd
// "platform" job field accept) builds MPSoCs whose cores carry their own
// DVS tables. The Fig. 5 enumeration generalizes to a mixed-radix space:
// each core draws its coefficient from its own table, and cores with
// physically equal tables remain interchangeable for the mapper — the
// paper's identical-core symmetry, applied per equivalence class. On a
// homogeneous platform the generalized walk is bit-identical to the legacy
// Fig. 5 sequence, and every determinism and strategy-equivalence guarantee
// above holds unchanged on mixed platforms (property-tested in
// internal/mapping). The paper's experiments stay pinned to the
// homogeneous Table-I platform; heterogeneous exploration is an extension,
// not a reproduction surface.
//
// # Contended interconnects
//
// By default communication is the paper's ideal fabric: a cross-core edge
// costs its communication cycles at the slower endpoint's clock and
// transfers never queue. WithInterconnect (or an "interconnect" block in
// the JSON platform spec) puts the cores behind a real fabric instead — a
// shared bus or an XY-routed 2D-mesh NoC with finite link bandwidth and
// per-hop latency. A message of cycles×BitsPerCycle bits reserves every
// link of its route cut-through style (staggered by the hop latency, held
// for bits/bandwidth seconds), and concurrent transfers sharing a link
// serialize deterministically. The scheduler, the DES simulator, the
// admissible makespan lower bound (which a fabric only ever tightens) and
// the exploration engine all charge the same model, so byte-identity
// across parallelism, strategies and sharding holds on contended
// platforms. Per-core busy-time billing stays the paper's eq. (7)
// both-endpoint model — the fabric shapes timing only — which keeps
// fabric-free platforms bit-identical to prior releases, designs and
// ProblemKeys alike.
//
// # SER sentinel
//
// OptimizeOptions.SER = 0 selects DefaultSER (the paper's 1e-9); a negative
// value selects a true zero soft error rate (Γ ≡ 0), which the 0-means-
// default sentinel cannot express. InjectFaults follows the same
// convention.
//
// # Serving
//
// ParseGraph ingests externally-authored task graphs (canonical JSON, TGFF,
// Graphviz DOT) with validation and deterministic defaulting, and Design
// marshals to a stable wire JSON via encoding/json. cmd/seadoptd serves the
// whole optimizer as a daemon — job queue, single-flight deduplication,
// content-addressed result cache, SSE progress — on these two surfaces; the
// server core lives in internal/service.
//
// # Observability
//
// OptimizeOptions.Stats attaches a telemetry collector to any exploration:
// the run fills the pointed-to ExploreStats with per-phase wall clock
// (bounds, ranked seeding, enumeration, probe, mapper, fold), combination
// verdict counters, probe-cache and delta-evaluation hit rates,
// incumbent/frontier events and per-worker busy spans. Telemetry is
// observe-only — results and progress are byte-identical with it on or
// off, at any parallelism. The daemon serves the same snapshot per job
// (GET /v1/jobs/{id}/stats), renders it as a perfetto-loadable worker
// timeline (GET /v1/jobs/{id}/trace, internal/trace), aggregates service
// latencies into Prometheus histograms on /metrics, and logs structured
// records via log/slog (-log-format, -log-level).
//
// The experiment harness regenerating every table and figure of the paper's
// evaluation lives in cmd/experiments; see EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package seadopt
